// Tests for corpus construction, MLM masking, pre-training, and the
// PretrainedLM bundle.

#include <cstdio>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "lm/corpus.h"
#include "lm/mlm.h"
#include "lm/pretrained_lm.h"

namespace promptem::lm {
namespace {

std::vector<data::GemDataset> OneSmallDataset() {
  data::BenchmarkGenOptions options;
  options.size_scale = 0.2;
  std::vector<data::GemDataset> out;
  out.push_back(data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 3,
                                        options));
  return out;
}

TEST(CorpusTest, BuildsPlainAndPairDocuments) {
  Corpus corpus = BuildCorpus(OneSmallDataset(), 1);
  ASSERT_FALSE(corpus.documents.empty());
  int with_label_word = 0;
  int plain = 0;
  for (const auto& doc : corpus.documents) {
    bool has_label = false;
    for (const auto& tok : doc) {
      if (tok == "similar" || tok == "different" || tok == "matched" ||
          tok == "mismatched" || tok == "relevant" || tok == "irrelevant") {
        has_label = true;
      }
    }
    if (has_label) {
      ++with_label_word;
    } else {
      ++plain;
    }
  }
  EXPECT_GT(with_label_word, 0);
  EXPECT_GT(plain, 0);
}

TEST(CorpusTest, DocumentsStartWithCls) {
  Corpus corpus = BuildCorpus(OneSmallDataset(), 1);
  for (const auto& doc : corpus.documents) {
    ASSERT_FALSE(doc.empty());
    EXPECT_EQ(doc.front(), "[CLS]");
  }
}

TEST(CorpusTest, DeterministicPerSeed) {
  Corpus a = BuildCorpus(OneSmallDataset(), 9);
  Corpus b = BuildCorpus(OneSmallDataset(), 9);
  ASSERT_EQ(a.documents.size(), b.documents.size());
  EXPECT_EQ(a.documents[1], b.documents[1]);
}

TEST(CorpusTest, VocabKeepsLabelWords) {
  Corpus corpus = BuildCorpus(OneSmallDataset(), 1);
  text::Vocab vocab = BuildCorpusVocab(corpus, RequiredPromptTokens());
  for (const auto& word : RequiredPromptTokens()) {
    EXPECT_TRUE(vocab.Contains(word)) << word;
  }
}

TEST(MaskTest, MasksRoughlyFifteenPercent) {
  core::Rng rng(1);
  std::vector<int> ids(1000, 100);
  MlmInstance inst = MaskTokens(ids, 200, 0.15f, &rng);
  int masked = 0;
  for (int t : inst.targets) masked += t >= 0 ? 1 : 0;
  EXPECT_NEAR(masked / 1000.0, 0.15, 0.05);
}

TEST(MaskTest, NeverCorruptsSpecialTokens) {
  core::Rng rng(2);
  std::vector<int> ids = {text::SpecialTokens::kCls, 100,
                          text::SpecialTokens::kSep};
  for (int trial = 0; trial < 50; ++trial) {
    MlmInstance inst = MaskTokens(ids, 200, 0.99f, &rng);
    EXPECT_EQ(inst.targets[0], -1);
    EXPECT_EQ(inst.targets[2], -1);
    EXPECT_EQ(inst.input_ids[0], text::SpecialTokens::kCls);
  }
}

TEST(MaskTest, GuaranteesAtLeastOneTarget) {
  core::Rng rng(3);
  std::vector<int> ids = {text::SpecialTokens::kCls, 42};
  MlmInstance inst = MaskTokens(ids, 200, 0.0f, &rng);
  int masked = 0;
  for (int t : inst.targets) masked += t >= 0 ? 1 : 0;
  EXPECT_EQ(masked, 1);
}

TEST(MaskTest, TargetsHoldOriginalIds) {
  core::Rng rng(4);
  std::vector<int> ids(50, 77);
  MlmInstance inst = MaskTokens(ids, 200, 0.5f, &rng);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (inst.targets[i] >= 0) EXPECT_EQ(inst.targets[i], 77);
  }
}

TEST(PretrainTest, LossDecreases) {
  auto datasets = OneSmallDataset();
  Corpus corpus = BuildCorpus(datasets, 1);
  text::Vocab vocab = BuildCorpusVocab(corpus, RequiredPromptTokens());
  nn::TransformerConfig config;
  config.vocab_size = vocab.size();
  config.dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ffn_dim = 32;
  config.max_seq_len = 96;
  core::Rng rng(5);
  nn::TransformerEncoder encoder(config, &rng);
  MlmOptions options;
  options.epochs = 2;
  options.max_seq_len = 96;
  auto losses = PretrainMlm(&encoder, corpus, vocab, options, &rng);
  ASSERT_EQ(losses.size(), 2u);
  EXPECT_LT(losses[1], losses[0]);
  EXPECT_GT(losses[0], 0.0f);
}

TEST(PretrainedLmTest, PretrainSaveLoadCloneRoundTrip) {
  auto datasets = OneSmallDataset();
  Corpus corpus = BuildCorpus(datasets, 1);
  nn::TransformerConfig config;
  config.dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ffn_dim = 32;
  config.max_seq_len = 96;
  MlmOptions options;
  options.epochs = 1;
  options.max_seq_len = 96;
  core::Rng rng(6);
  auto lm = PretrainedLM::Pretrain(corpus, config, options,
                                   RequiredPromptTokens(), &rng);
  ASSERT_NE(lm, nullptr);
  EXPECT_EQ(lm->config().vocab_size, lm->vocab().size());

  const std::string prefix = "/tmp/promptem_lm_test";
  ASSERT_TRUE(lm->Save(prefix).ok());
  auto loaded = PretrainedLM::Load(prefix);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->vocab().size(), lm->vocab().size());

  // Clone carries identical weights.
  core::Rng clone_rng(7);
  auto clone = lm->CloneEncoder(&clone_rng);
  auto p_orig = lm->encoder().NamedParameters();
  auto p_clone = clone->NamedParameters();
  ASSERT_EQ(p_orig.size(), p_clone.size());
  for (size_t i = 0; i < p_orig.size(); ++i) {
    for (int64_t j = 0; j < p_orig[i].param.numel(); ++j) {
      ASSERT_EQ(p_orig[i].param.data()[j], p_clone[i].param.data()[j]);
    }
  }
  std::remove((prefix + ".vocab").c_str());
  std::remove((prefix + ".config").c_str());
  std::remove((prefix + ".ckpt").c_str());
}

TEST(PretrainedLmTest, LoadMissingFails) {
  EXPECT_FALSE(PretrainedLM::Load("/tmp/nonexistent_promptem_lm").ok());
}

TEST(PretrainedLmTest, AlwaysMaskWordsResolved) {
  // Pretrain with forced label-word masking; just verifies the pipeline
  // accepts surface-form words and runs.
  auto datasets = OneSmallDataset();
  Corpus corpus = BuildCorpus(datasets, 1);
  nn::TransformerConfig config;
  config.dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ffn_dim = 32;
  config.max_seq_len = 96;
  MlmOptions options;
  options.epochs = 1;
  options.max_seq_len = 96;
  options.always_mask_words = {"similar", "different"};
  core::Rng rng(8);
  auto lm = PretrainedLM::Pretrain(corpus, config, options,
                                   RequiredPromptTokens(), &rng);
  EXPECT_FALSE(lm->pretrain_losses().empty());
}

}  // namespace
}  // namespace promptem::lm
