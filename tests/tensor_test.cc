// Tensor, kernel, and autograd tests — including numerical gradient checks
// for every differentiable op.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/autograd.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace promptem::tensor {
namespace {

namespace ops = promptem::tensor::ops;

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ(t.at(i, j), 0.0f);
  }
}

TEST(TensorTest, FromValuesRoundTrip) {
  Tensor t = Tensor::FromValues({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(3.5f).item(), 3.5f);
}

TEST(TensorTest, DetachedCloneSharesNothing) {
  Tensor a = Tensor::FromValues({2}, {1, 2}, /*requires_grad=*/true);
  Tensor b = a.DetachedClone();
  b.set(0, 9.0f);
  EXPECT_EQ(a.at(0), 1.0f);
  EXPECT_FALSE(b.requires_grad());
}

TEST(TensorTest, CopyDataFrom) {
  Tensor a = Tensor::FromValues({3}, {1, 2, 3});
  Tensor b = Tensor::Zeros({3});
  b.CopyDataFrom(a);
  EXPECT_EQ(b.at(2), 3.0f);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor::Zeros({3, 4}).ShapeString(), "[3, 4]");
  EXPECT_EQ(Tensor().ShapeString(), "[null]");
}

// ---------------------------------------------------------------------------
// Kernel tests.
// ---------------------------------------------------------------------------

TEST(KernelsTest, GemmNoTrans) {
  // [2x3] @ [3x2]
  const float a[] = {1, 2, 3, 4, 5, 6};
  const float b[] = {7, 8, 9, 10, 11, 12};
  float c[4] = {0};
  kernels::Gemm(false, false, 2, 2, 3, 1.0f, a, b, 0.0f, c);
  EXPECT_FLOAT_EQ(c[0], 58.0f);
  EXPECT_FLOAT_EQ(c[1], 64.0f);
  EXPECT_FLOAT_EQ(c[2], 139.0f);
  EXPECT_FLOAT_EQ(c[3], 154.0f);
}

TEST(KernelsTest, GemmTransB) {
  // [2x3] @ [2x3]^T -> [2x2]
  const float a[] = {1, 2, 3, 4, 5, 6};
  const float b[] = {1, 0, 1, 0, 1, 0};
  float c[4] = {0};
  kernels::Gemm(false, true, 2, 2, 3, 1.0f, a, b, 0.0f, c);
  EXPECT_FLOAT_EQ(c[0], 4.0f);   // 1+3
  EXPECT_FLOAT_EQ(c[1], 2.0f);   // 2
  EXPECT_FLOAT_EQ(c[2], 10.0f);  // 4+6
  EXPECT_FLOAT_EQ(c[3], 5.0f);
}

TEST(KernelsTest, GemmTransA) {
  // [3x2]^T stored as [3x2]; op(A) [2x3] @ B [3x1].
  const float a[] = {1, 4, 2, 5, 3, 6};
  const float b[] = {1, 1, 1};
  float c[2] = {0};
  kernels::Gemm(true, false, 2, 1, 3, 1.0f, a, b, 0.0f, c);
  EXPECT_FLOAT_EQ(c[0], 6.0f);
  EXPECT_FLOAT_EQ(c[1], 15.0f);
}

TEST(KernelsTest, GemmBetaAccumulates) {
  const float a[] = {1.0f};
  const float b[] = {2.0f};
  float c[1] = {10.0f};
  kernels::Gemm(false, false, 1, 1, 1, 1.0f, a, b, 1.0f, c);
  EXPECT_FLOAT_EQ(c[0], 12.0f);
}

TEST(KernelsTest, SoftmaxRowsSumToOne) {
  const float x[] = {1, 2, 3, 100, 100, 100};
  float y[6];
  kernels::SoftmaxRows(x, 2, 3, y);
  EXPECT_NEAR(y[0] + y[1] + y[2], 1.0f, 1e-5f);
  EXPECT_NEAR(y[3], 1.0f / 3.0f, 1e-5f);
  EXPECT_GT(y[2], y[1]);
}

TEST(KernelsTest, LogSoftmaxMatchesSoftmax) {
  const float x[] = {0.5f, -1.0f, 2.0f};
  float soft[3];
  float logsoft[3];
  kernels::SoftmaxRows(x, 1, 3, soft);
  kernels::LogSoftmaxRows(x, 1, 3, logsoft);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::exp(logsoft[i]), soft[i], 1e-5f);
  }
}

TEST(KernelsTest, LayerNormNormalizes) {
  const float x[] = {1, 2, 3, 4};
  const float gamma[] = {1, 1, 1, 1};
  const float beta[] = {0, 0, 0, 0};
  float out[4];
  float mean[1];
  float rstd[1];
  kernels::LayerNormForward(x, 1, 4, gamma, beta, 1e-5f, out, mean, rstd);
  EXPECT_NEAR(mean[0], 2.5f, 1e-5f);
  float sum = 0.0f;
  for (float v : out) sum += v;
  EXPECT_NEAR(sum, 0.0f, 1e-4f);
}

TEST(KernelsTest, GeluValues) {
  EXPECT_NEAR(kernels::Gelu(0.0f), 0.0f, 1e-6f);
  EXPECT_GT(kernels::Gelu(3.0f), 2.9f);
  EXPECT_LT(std::fabs(kernels::Gelu(-5.0f)), 0.01f);
}

TEST(KernelsTest, DotAndNorm) {
  const float a[] = {3, 4};
  EXPECT_FLOAT_EQ(kernels::L2Norm(a, 2), 5.0f);
  const float b[] = {1, 2};
  EXPECT_FLOAT_EQ(kernels::Dot(a, b, 2), 11.0f);
}

// ---------------------------------------------------------------------------
// Numerical gradient checking. For a scalar function L(x) built from ops,
// compares autograd dL/dx against (L(x+h) - L(x-h)) / 2h.
// ---------------------------------------------------------------------------

using LossFn = std::function<Tensor(const Tensor&)>;

void CheckGradient(Tensor x, const LossFn& loss_fn, float tolerance = 2e-2f) {
  x.set_requires_grad(true);
  Tensor loss = loss_fn(x);
  ASSERT_EQ(loss.numel(), 1);
  x.ZeroGrad();
  loss.Backward();
  std::vector<float> analytic(x.grad(), x.grad() + x.numel());

  const float h = 1e-3f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float original = x.data()[i];
    x.data()[i] = original + h;
    const float up = loss_fn(x).item();
    x.data()[i] = original - h;
    const float down = loss_fn(x).item();
    x.data()[i] = original;
    const float numeric = (up - down) / (2.0f * h);
    EXPECT_NEAR(analytic[static_cast<size_t>(i)], numeric, tolerance)
        << "at flat index " << i;
  }
}

Tensor RandomTensor(std::vector<int> shape, uint64_t seed) {
  core::Rng rng(seed);
  Tensor t = Tensor::Zeros(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = rng.Uniform(-1.0f, 1.0f);
  }
  return t;
}

TEST(GradCheckTest, Add) {
  Tensor other = RandomTensor({2, 3}, 1);
  CheckGradient(RandomTensor({2, 3}, 2), [&](const Tensor& x) {
    return ops::Sum(ops::Add(x, other));
  });
}

TEST(GradCheckTest, SubBothSides) {
  Tensor other = RandomTensor({2, 3}, 3);
  CheckGradient(RandomTensor({2, 3}, 4), [&](const Tensor& x) {
    return ops::Sum(ops::Sub(x, other));
  });
  CheckGradient(RandomTensor({2, 3}, 5), [&](const Tensor& x) {
    return ops::Sum(ops::Sub(other, x));
  });
}

TEST(GradCheckTest, Mul) {
  Tensor other = RandomTensor({2, 3}, 6);
  CheckGradient(RandomTensor({2, 3}, 7), [&](const Tensor& x) {
    return ops::Sum(ops::Mul(x, other));
  });
}

TEST(GradCheckTest, AddBiasThroughX) {
  Tensor bias = RandomTensor({3}, 8);
  CheckGradient(RandomTensor({2, 3}, 9), [&](const Tensor& x) {
    return ops::Sum(ops::Mul(ops::AddBias(x, bias),
                             ops::AddBias(x, bias)));
  });
}

TEST(GradCheckTest, AddBiasThroughBias) {
  Tensor x = RandomTensor({2, 3}, 10);
  CheckGradient(RandomTensor({3}, 11), [&](const Tensor& b) {
    return ops::Sum(ops::Mul(ops::AddBias(x, b), ops::AddBias(x, b)));
  });
}

TEST(GradCheckTest, ScaleAndAddScalar) {
  CheckGradient(RandomTensor({4}, 12), [](const Tensor& x) {
    return ops::Sum(ops::AddScalar(ops::Scale(x, 2.5f), 1.0f));
  });
}

TEST(GradCheckTest, MatMulLeft) {
  Tensor b = RandomTensor({3, 2}, 13);
  CheckGradient(RandomTensor({2, 3}, 14), [&](const Tensor& a) {
    return ops::Sum(ops::Mul(ops::MatMul(a, b), ops::MatMul(a, b)));
  });
}

TEST(GradCheckTest, MatMulRight) {
  Tensor a = RandomTensor({2, 3}, 15);
  CheckGradient(RandomTensor({3, 2}, 16), [&](const Tensor& b) {
    return ops::Sum(ops::Mul(ops::MatMul(a, b), ops::MatMul(a, b)));
  });
}

TEST(GradCheckTest, MatMulTransB) {
  Tensor b = RandomTensor({2, 3}, 17);  // used as B^T
  CheckGradient(RandomTensor({2, 3}, 18), [&](const Tensor& a) {
    return ops::Sum(ops::MatMul(a, b, false, true));
  });
  Tensor a = RandomTensor({2, 3}, 19);
  CheckGradient(RandomTensor({2, 3}, 20), [&](const Tensor& b2) {
    return ops::Sum(
        ops::Mul(ops::MatMul(a, b2, false, true),
                 ops::MatMul(a, b2, false, true)));
  });
}

TEST(GradCheckTest, MatMulTransA) {
  Tensor b = RandomTensor({2, 4}, 21);
  CheckGradient(RandomTensor({2, 3}, 22), [&](const Tensor& a) {
    // op(A) = A^T: [3,2] @ [2,4] -> [3,4]
    return ops::Sum(ops::Mul(ops::MatMul(a, b, true, false),
                             ops::MatMul(a, b, true, false)));
  });
}

TEST(GradCheckTest, Softmax) {
  CheckGradient(RandomTensor({2, 4}, 23), [](const Tensor& x) {
    Tensor y = ops::Softmax(x);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, LogSoftmax) {
  Tensor weights = RandomTensor({2, 4}, 24);
  CheckGradient(RandomTensor({2, 4}, 25), [&](const Tensor& x) {
    return ops::Sum(ops::Mul(ops::LogSoftmax(x), weights));
  });
}

TEST(GradCheckTest, LayerNormThroughX) {
  Tensor gamma = Tensor::Full({4}, 1.2f);
  Tensor beta = Tensor::Full({4}, 0.1f);
  CheckGradient(RandomTensor({2, 4}, 26), [&](const Tensor& x) {
    Tensor y = ops::LayerNorm(x, gamma, beta);
    return ops::Sum(ops::Mul(y, y));
  }, 5e-2f);
}

TEST(GradCheckTest, LayerNormThroughGammaBeta) {
  Tensor x = RandomTensor({2, 4}, 27);
  Tensor beta = Tensor::Zeros({4});
  CheckGradient(RandomTensor({4}, 28), [&](const Tensor& gamma) {
    Tensor y = ops::LayerNorm(x, gamma, beta);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, Activations) {
  for (uint64_t seed = 30; seed < 34; ++seed) {
    CheckGradient(RandomTensor({3, 3}, seed), [seed](const Tensor& x) {
      switch (seed % 4) {
        case 0:
          return ops::Sum(ops::Gelu(x));
        case 1:
          return ops::Sum(ops::Tanh(x));
        case 2:
          return ops::Sum(ops::Sigmoid(x));
        default:
          return ops::Sum(ops::Mul(ops::Relu(x), ops::Relu(x)));
      }
    });
  }
}

TEST(GradCheckTest, AbsAwayFromZero) {
  Tensor x = Tensor::FromValues({4}, {0.5f, -0.7f, 1.2f, -2.0f});
  CheckGradient(x, [](const Tensor& v) { return ops::Sum(ops::Abs(v)); });
}

TEST(GradCheckTest, LogPositive) {
  Tensor x = Tensor::FromValues({3}, {0.5f, 1.5f, 2.5f});
  CheckGradient(x, [](const Tensor& v) { return ops::Sum(ops::Log(v)); });
}

TEST(GradCheckTest, EmbeddingLookup) {
  std::vector<int> ids = {0, 2, 2, 1};
  CheckGradient(RandomTensor({3, 4}, 35), [&](const Tensor& table) {
    Tensor y = ops::EmbeddingLookup(table, ids);
    return ops::Sum(ops::Mul(y, y));
  });
}

TEST(GradCheckTest, SelectRowsAndCols) {
  CheckGradient(RandomTensor({3, 4}, 36), [](const Tensor& x) {
    Tensor rows = ops::SelectRows(x, {2, 0});
    Tensor cols = ops::SelectCols(rows, {3, 1, 1});
    return ops::Sum(ops::Mul(cols, cols));
  });
}

TEST(GradCheckTest, ConcatRowsAndCols) {
  Tensor other = RandomTensor({2, 3}, 37);
  CheckGradient(RandomTensor({2, 3}, 38), [&](const Tensor& x) {
    Tensor r = ops::ConcatRows({x, other});
    Tensor c = ops::ConcatCols({r, r});
    return ops::Sum(ops::Mul(c, c));
  });
}

TEST(GradCheckTest, MeanRowsAndMean) {
  CheckGradient(RandomTensor({3, 4}, 39), [](const Tensor& x) {
    Tensor pooled = ops::MeanRows(x);
    return ops::Mean(ops::Mul(pooled, pooled));
  });
}

TEST(GradCheckTest, CrossEntropyLogits) {
  std::vector<int> targets = {1, 0, 2};
  CheckGradient(RandomTensor({3, 3}, 40), [&](const Tensor& logits) {
    return ops::CrossEntropyLogits(logits, targets);
  });
}

TEST(GradCheckTest, CrossEntropyWithMaskedRows) {
  std::vector<int> targets = {1, -1, 2};
  CheckGradient(RandomTensor({3, 3}, 41), [&](const Tensor& logits) {
    return ops::CrossEntropyLogits(logits, targets);
  });
}

TEST(GradCheckTest, DiamondGraphAccumulates) {
  // x feeds two paths that rejoin; gradient must be the sum of both.
  CheckGradient(RandomTensor({2, 2}, 42), [](const Tensor& x) {
    Tensor a = ops::Scale(x, 2.0f);
    Tensor b = ops::Mul(x, x);
    return ops::Sum(ops::Add(a, b));
  });
}

TEST(AutogradTest, BackwardAccumulatesAcrossCalls) {
  Tensor x = Tensor::FromValues({1}, {3.0f}, /*requires_grad=*/true);
  x.ZeroGrad();
  ops::Scale(x, 2.0f).Backward();
  ops::Scale(x, 4.0f).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
}

TEST(AutogradTest, NoGradGuardSkipsGraph) {
  Tensor x = Tensor::FromValues({1}, {3.0f}, /*requires_grad=*/true);
  NoGradGuard guard;
  Tensor y = ops::Scale(x, 2.0f);
  EXPECT_FALSE(y.impl()->backward_fn != nullptr);
}

TEST(AutogradTest, DropoutZeroPIsIdentity) {
  core::Rng rng(1);
  Tensor x = Tensor::FromValues({2}, {1.0f, 2.0f});
  Tensor y = ops::Dropout(x, 0.0f, &rng);
  EXPECT_EQ(y.data(), x.data());
}

TEST(AutogradTest, DropoutMaskScalesKeptValues) {
  core::Rng rng(2);
  Tensor x = Tensor::Full({1000}, 1.0f);
  Tensor y = ops::Dropout(x, 0.5f, &rng);
  int kept = 0;
  for (int i = 0; i < 1000; ++i) {
    if (y.at(i) != 0.0f) {
      EXPECT_FLOAT_EQ(y.at(i), 2.0f);
      ++kept;
    }
  }
  EXPECT_GT(kept, 400);
  EXPECT_LT(kept, 600);
}

TEST(AutogradTest, DropoutGradientMatchesMask) {
  core::Rng rng(3);
  Tensor x = Tensor::Full({100}, 1.0f, /*requires_grad=*/true);
  Tensor y = ops::Dropout(x, 0.3f, &rng);
  Tensor loss = ops::Sum(y);
  x.ZeroGrad();
  loss.Backward();
  for (int i = 0; i < 100; ++i) {
    if (y.at(i) == 0.0f) {
      EXPECT_FLOAT_EQ(x.grad()[i], 0.0f);
    } else {
      EXPECT_NEAR(x.grad()[i], 1.0f / 0.7f, 1e-5f);
    }
  }
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  Tensor x = Tensor::FromValues({1}, {1.0f}, /*requires_grad=*/true);
  Tensor y = x;
  for (int i = 0; i < 20000; ++i) y = ops::Scale(y, 1.0f);
  x.ZeroGrad();
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

}  // namespace
}  // namespace promptem::tensor
