// Tests for the thread-pool runtime: ParallelFor semantics (index
// coverage, nesting, exception propagation, pool-size-1 inlining) and the
// bitwise-determinism contract — kernels, MC-Dropout estimates, and whole
// training runs must produce identical bits for every pool size. This is
// also the suite to run under TSan (ctest -L tsan in a
// -DPROMPTEM_SANITIZE=thread build).

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/deepmatcher.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "promptem/trainer.h"
#include "promptem/uncertainty.h"
#include "tensor/kernels.h"

namespace promptem {
namespace {

/// RAII pool-size override; restores the environment default afterwards so
/// tests do not leak their pool configuration into each other.
class ScopedPoolSize {
 public:
  explicit ScopedPoolSize(int n) { core::SetNumThreads(n); }
  ~ScopedPoolSize() { core::SetNumThreads(0); }
};

// ---------------------------------------------------------------------------
// ParallelFor semantics.
// ---------------------------------------------------------------------------

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ScopedPoolSize pool(4);
  constexpr int64_t kBegin = 3;
  constexpr int64_t kEnd = 1003;
  std::vector<std::atomic<int>> hits(kEnd);
  for (auto& h : hits) h.store(0);
  core::ParallelFor(kBegin, kEnd, 7, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < kBegin; ++i) EXPECT_EQ(hits[i].load(), 0);
  for (int64_t i = kBegin; i < kEnd; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, NonPositiveGrainIsOneChunk) {
  ScopedPoolSize pool(4);
  std::atomic<int> calls{0};
  core::ParallelFor(0, 100, 0, [&](int64_t begin, int64_t end) {
    calls.fetch_add(1);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 100);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, EmptyRangeNeverCallsBody) {
  ScopedPoolSize pool(4);
  std::atomic<int> calls{0};
  core::ParallelFor(5, 5, 1, [&](int64_t, int64_t) { calls.fetch_add(1); });
  core::ParallelFor(7, 3, 1, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, PoolSizeOneRunsInlineOnCallingThread) {
  ScopedPoolSize pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> total{0};
  core::ParallelFor(0, 64, 4, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelForTest, NestedParallelForRunsInline) {
  ScopedPoolSize pool(4);
  EXPECT_FALSE(core::InParallelRegion());
  std::atomic<int> inner_total{0};
  core::ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    EXPECT_TRUE(core::InParallelRegion());
    const std::thread::id outer_thread = std::this_thread::get_id();
    core::ParallelFor(0, 32, 4, [&](int64_t begin, int64_t end) {
      // The nested region must stay on the chunk's own thread.
      EXPECT_EQ(std::this_thread::get_id(), outer_thread);
      inner_total.fetch_add(static_cast<int>(end - begin));
    });
  });
  EXPECT_FALSE(core::InParallelRegion());
  EXPECT_EQ(inner_total.load(), 8 * 32);
}

TEST(ParallelForTest, LowestFailingChunkIsRethrown) {
  ScopedPoolSize pool(4);
  try {
    core::ParallelFor(0, 100, 10, [&](int64_t begin, int64_t) {
      if (begin == 30 || begin == 70) {
        throw std::runtime_error(std::to_string(begin));
      }
    });
    FAIL() << "expected the chunk exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "30");
  }
  // The pool must survive a failed job.
  std::atomic<int> total{0};
  core::ParallelFor(0, 100, 10, [&](int64_t begin, int64_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 100);
}

// ---------------------------------------------------------------------------
// Bitwise determinism across pool sizes.
// ---------------------------------------------------------------------------

/// Runs `fn` under pool sizes 1 and 4 and returns both results.
template <typename Fn>
auto UnderBothPoolSizes(const Fn& fn) {
  core::SetNumThreads(1);
  auto single = fn();
  core::SetNumThreads(4);
  auto pooled = fn();
  core::SetNumThreads(0);
  return std::make_pair(std::move(single), std::move(pooled));
}

TEST(DeterminismTest, GemmBitwiseIdenticalAcrossPoolSizes) {
  // 128^3 = 2^21 exceeds the parallel threshold, so the pooled run really
  // shards rows across lanes.
  constexpr int kN = 128;
  std::vector<float> a(kN * kN);
  std::vector<float> b(kN * kN);
  core::Rng rng(13);
  for (auto& v : a) v = rng.Uniform(-1.0f, 1.0f);
  for (auto& v : b) v = rng.Uniform(-1.0f, 1.0f);
  auto run = [&]() {
    std::vector<float> c(kN * kN, 0.0f);
    tensor::kernels::Gemm(false, false, kN, kN, kN, 1.0f, a.data(),
                          b.data(), 0.0f, c.data());
    return c;
  };
  auto [single, pooled] = UnderBothPoolSizes(run);
  EXPECT_EQ(0, std::memcmp(single.data(), pooled.data(),
                           single.size() * sizeof(float)));
}

/// A tiny vocabulary + synthetic encoded pairs (no pre-trained LM needed):
/// matching pairs share their id prefix, mismatches do not.
text::Vocab TestVocab() {
  text::Vocab vocab;
  for (char c = 'a'; c <= 'z'; ++c) vocab.AddToken(std::string(1, c));
  return vocab;
}

std::vector<em::EncodedPair> SyntheticPairs(const text::Vocab& vocab,
                                            int count, uint64_t seed) {
  core::Rng rng(seed);
  std::vector<em::EncodedPair> pairs;
  pairs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    em::EncodedPair x;
    x.label = i % 2;
    for (int t = 0; t < 6; ++t) {
      const int id =
          5 + static_cast<int>(rng.NextU64() % (vocab.size() - 5));
      x.left_ids.push_back(id);
      x.right_ids.push_back(x.label == 1 ? id : 5 + (id - 4) %
                                                     (vocab.size() - 5));
    }
    pairs.push_back(std::move(x));
  }
  return pairs;
}

TEST(DeterminismTest, McEstimatesIdenticalAcrossPoolSizes) {
  const text::Vocab vocab = TestVocab();
  const auto pairs = SyntheticPairs(vocab, 6, 21);
  auto run = [&]() {
    core::Rng model_rng(7);
    baselines::DeepMatcherModel model(vocab, /*embed_dim=*/8,
                                      /*hidden_dim=*/4, &model_rng);
    core::Rng mc_rng(5);
    return em::McDropoutEstimateBatch(&model, pairs, /*passes=*/4, &mc_rng);
  };
  auto [single, pooled] = UnderBothPoolSizes(run);
  ASSERT_EQ(single.size(), pooled.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].mean_pos_prob, pooled[i].mean_pos_prob);
    EXPECT_EQ(single[i].uncertainty, pooled[i].uncertainty);
    EXPECT_EQ(single[i].pseudo_label, pooled[i].pseudo_label);
    EXPECT_EQ(single[i].confidence, pooled[i].confidence);
  }
}

TEST(DeterminismTest, TrainingBitwiseIdenticalAcrossPoolSizes) {
  const text::Vocab vocab = TestVocab();
  const auto train = SyntheticPairs(vocab, 24, 31);
  const auto valid = SyntheticPairs(vocab, 8, 41);
  em::TrainOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.seed = 17;
  auto run = [&]() {
    core::Rng model_rng(7);
    baselines::DeepMatcherModel model(vocab, /*embed_dim=*/8,
                                      /*hidden_dim=*/4, &model_rng);
    em::TrainResult result =
        em::TrainClassifier(&model, train, valid, options);
    return std::make_pair(em::SnapshotParams(model), result.best_valid.F1());
  };
  auto [single, pooled] = UnderBothPoolSizes(run);
  EXPECT_EQ(single.second, pooled.second);  // identical validation F1
  ASSERT_EQ(single.first.size(), pooled.first.size());
  for (size_t p = 0; p < single.first.size(); ++p) {
    ASSERT_EQ(single.first[p].size(), pooled.first[p].size());
    EXPECT_EQ(0, std::memcmp(single.first[p].data(), pooled.first[p].data(),
                             single.first[p].size() * sizeof(float)))
        << "parameter " << p << " diverged across pool sizes";
  }
}

}  // namespace
}  // namespace promptem
