// Tests for the fused scaled-dot-product attention kernel and the
// strided-view machinery behind it: fused-vs-reference forward parity,
// gradient parity for every projection and the input, dropout mask
// parity across paths, the train/eval x grad/no-grad matrix, run-to-run
// determinism under ParallelFor, SliceCols vs SelectCols bitwise
// identity (the LSTM gate slicing contract), and GemmStrided vs Gemm.
//
// Runs under both sanitizer wirings: label "tsan" exercises the
// (head, row-tile) ParallelFor decomposition, label "asan" the
// arena-backed graph-free path.

#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "nn/attention.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace promptem {
namespace {

namespace ops = tensor::ops;
using tensor::Tensor;

struct ScopedPoolSize {
  explicit ScopedPoolSize(int n) { core::SetNumThreads(n); }
  ~ScopedPoolSize() { core::SetNumThreads(0); }
};

Tensor RandomTensor(std::vector<int> shape, uint64_t seed,
                    bool requires_grad = false) {
  core::Rng rng(seed);
  Tensor t = Tensor::Zeros(std::move(shape), requires_grad);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = rng.Gaussian();
  }
  return t;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.numel(), b.numel());
  float worst = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

float MaxAbsDiff(const float* a, const float* b, int64_t n) {
  float worst = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

/// The unfused per-op reference composition over leaf q/k/v tensors.
Tensor ReferenceSdpa(const Tensor& q, const Tensor& k, const Tensor& v,
                     int num_heads, float scale, float dropout_p,
                     core::Rng* rng) {
  const int d = q.dim(1);
  const int hd = d / num_heads;
  std::vector<Tensor> heads;
  for (int h = 0; h < num_heads; ++h) {
    std::vector<int> cols(hd);
    for (int c = 0; c < hd; ++c) cols[c] = h * hd + c;
    Tensor qh = ops::SelectCols(q, cols);
    Tensor kh = ops::SelectCols(k, cols);
    Tensor vh = ops::SelectCols(v, cols);
    Tensor attn =
        ops::Softmax(ops::Scale(ops::MatMul(qh, kh, false, true), scale));
    if (dropout_p > 0.0f) attn = ops::Dropout(attn, dropout_p, rng);
    heads.push_back(ops::MatMul(attn, vh));
  }
  return ops::ConcatCols(heads);
}

TEST(GemmStridedTest, MatchesGemmOnAllTransposeCombos) {
  const int m = 7, n = 5, k = 9;
  Tensor a = RandomTensor({m, k}, 1);
  Tensor at = RandomTensor({k, m}, 2);
  Tensor b = RandomTensor({k, n}, 3);
  Tensor bt = RandomTensor({n, k}, 4);
  for (int ta = 0; ta < 2; ++ta) {
    for (int tb = 0; tb < 2; ++tb) {
      const float* pa = ta ? at.data() : a.data();
      const float* pb = tb ? bt.data() : b.data();
      const int lda = ta ? m : k;
      const int ldb = tb ? k : n;
      std::vector<float> want(static_cast<size_t>(m) * n, 0.5f);
      std::vector<float> got = want;
      tensor::kernels::Gemm(ta, tb, m, n, k, 1.3f, pa, pb, 0.7f,
                            want.data());
      tensor::kernels::GemmStrided(ta, tb, m, n, k, 1.3f, pa, lda, pb, ldb,
                                   0.7f, got.data(), n);
      EXPECT_LE(MaxAbsDiff(want.data(), got.data(), want.size()), 1e-5f)
          << "trans_a=" << ta << " trans_b=" << tb;
    }
  }
}

TEST(GemmStridedTest, StridedOperandsAddressColumnBlocks) {
  // C block of a wider buffer += A block times B block, strides != cols.
  const int t = 6, d = 8, hd = 4, off = 4;
  Tensor a = RandomTensor({t, d}, 5);
  Tensor b = RandomTensor({t, d}, 6);
  std::vector<float> c(static_cast<size_t>(t) * d, 0.0f);
  tensor::kernels::GemmStrided(false, true, t, t, hd, 1.0f,
                               a.data() + off, d, b.data() + off, d, 0.0f,
                               c.data(), d);
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < t; ++j) {
      float want = 0.0f;
      for (int p = 0; p < hd; ++p) {
        want += a.at(i, off + p) * b.at(j, off + p);
      }
      EXPECT_NEAR(c[static_cast<size_t>(i) * d + j], want, 1e-5f);
    }
  }
}

TEST(SliceColsTest, BitwiseIdenticalToSelectCols) {
  Tensor x = RandomTensor({5, 12}, 7, /*requires_grad=*/true);
  Tensor x2 = RandomTensor({5, 12}, 7, /*requires_grad=*/true);
  std::vector<int> cols = {4, 5, 6, 7};
  Tensor a = ops::SliceCols(x, 4, 4);
  Tensor b = ops::SelectCols(x2, cols);
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           sizeof(float) * static_cast<size_t>(a.numel())));
  // Gradient scatter must hit the same window with the same values.
  ops::Sum(ops::Mul(a, a)).Backward();
  ops::Sum(ops::Mul(b, b)).Backward();
  ASSERT_EQ(0, std::memcmp(x.grad(), x2.grad(),
                           sizeof(float) * static_cast<size_t>(x.numel())));
}

TEST(SliceColsTest, LstmGateSlicingStillLearns) {
  core::Rng rng(11);
  nn::Lstm lstm(6, 4, &rng);
  Tensor x = RandomTensor({5, 6}, 12, /*requires_grad=*/true);
  lstm.ZeroGrad();
  Tensor out = lstm.Forward(x);
  EXPECT_EQ(out.dim(0), 5);
  EXPECT_EQ(out.dim(1), 4);
  ops::Sum(out).Backward();
  for (const auto& np : lstm.NamedParameters()) {
    float norm = 0.0f;
    for (int64_t i = 0; i < np.param.numel(); ++i) {
      norm += std::fabs(np.param.grad()[i]);
    }
    EXPECT_GT(norm, 0.0f) << np.name;
  }
}

TEST(FusedSdpaTest, ForwardParityAgainstReference) {
  for (int t : {1, 3, 31, 70}) {
    Tensor q = RandomTensor({t, 16}, 21);
    Tensor k = RandomTensor({t, 16}, 22);
    Tensor v = RandomTensor({t, 16}, 23);
    const float scale = 0.25f;
    Tensor fused = ops::FusedSdpa(q, k, v, 4, scale, 0.0f, nullptr);
    Tensor ref = ReferenceSdpa(q, k, v, 4, scale, 0.0f, nullptr);
    EXPECT_LE(MaxAbsDiff(fused, ref), 1e-5f) << "t=" << t;
  }
}

TEST(FusedSdpaTest, GradientParityForInputsAtOpLevel) {
  const int t = 9, d = 8, heads = 2;
  const float scale = 1.0f / std::sqrt(4.0f);
  Tensor q1 = RandomTensor({t, d}, 31, true);
  Tensor k1 = RandomTensor({t, d}, 32, true);
  Tensor v1 = RandomTensor({t, d}, 33, true);
  Tensor q2 = RandomTensor({t, d}, 31, true);
  Tensor k2 = RandomTensor({t, d}, 32, true);
  Tensor v2 = RandomTensor({t, d}, 33, true);
  ops::Sum(ops::FusedSdpa(q1, k1, v1, heads, scale, 0.0f, nullptr))
      .Backward();
  ops::Sum(ReferenceSdpa(q2, k2, v2, heads, scale, 0.0f, nullptr))
      .Backward();
  EXPECT_LE(MaxAbsDiff(q1.grad(), q2.grad(), q1.numel()), 1e-4f);
  EXPECT_LE(MaxAbsDiff(k1.grad(), k2.grad(), k1.numel()), 1e-4f);
  EXPECT_LE(MaxAbsDiff(v1.grad(), v2.grad(), v1.numel()), 1e-4f);
}

/// Snapshot of every parameter gradient plus the input gradient.
std::map<std::string, std::vector<float>> GradSnapshot(
    const nn::MultiHeadSelfAttention& attn, const Tensor& x) {
  std::map<std::string, std::vector<float>> out;
  for (const auto& np : attn.NamedParameters()) {
    out[np.name].assign(np.param.grad(),
                        np.param.grad() + np.param.numel());
  }
  out["__input__"].assign(x.grad(), x.grad() + x.numel());
  return out;
}

TEST(AttentionFusionTest, GradientParityForAllProjectionsAndInput) {
  for (float p : {0.0f, 0.3f}) {
    core::Rng init(41);
    nn::MultiHeadSelfAttention attn(16, 4, p, &init);
    attn.Train();
    Tensor x = RandomTensor({11, 16}, 42, /*requires_grad=*/true);

    attn.set_use_fused(true);
    attn.ZeroGrad();
    x.ZeroGrad();
    core::Rng drop1(77);
    ops::Sum(attn.Forward(x, &drop1)).Backward();
    auto fused = GradSnapshot(attn, x);

    attn.set_use_fused(false);
    attn.ZeroGrad();
    x.ZeroGrad();
    core::Rng drop2(77);
    ops::Sum(attn.Forward(x, &drop2)).Backward();
    auto ref = GradSnapshot(attn, x);

    ASSERT_EQ(fused.size(), ref.size());
    for (const auto& [name, grad] : fused) {
      const auto& want = ref.at(name);
      ASSERT_EQ(grad.size(), want.size()) << name;
      EXPECT_LE(MaxAbsDiff(grad.data(), want.data(),
                           static_cast<int64_t>(grad.size())),
                1e-4f)
          << "p=" << p << " param=" << name;
    }
  }
}

// With a shared seed the two paths must (a) consume the identical number
// of Bernoulli draws — checked by comparing the stream position afterward
// — and (b) produce outputs within forward tolerance, which fails loudly
// if even one mask bit differs (a flipped bit perturbs a whole output row
// by O(keep_scale * attn weight) >> 1e-5). Together these pin the fused
// mask bit-for-bit to the unfused path's.
TEST(AttentionFusionTest, DropoutMaskParityAcrossPaths) {
  for (bool grad_mode : {true, false}) {
    core::Rng init(51);
    nn::MultiHeadSelfAttention attn(16, 4, 0.5f, &init);
    attn.Train();  // MC-Dropout keeps training mode on in eval passes.
    Tensor x = RandomTensor({13, 16}, 52);

    Tensor fused_out, ref_out;
    core::Rng drop1(99), drop2(99);
    if (grad_mode) {
      attn.set_use_fused(true);
      fused_out = attn.Forward(x, &drop1);
      attn.set_use_fused(false);
      ref_out = attn.Forward(x, &drop2);
    } else {
      tensor::NoGradGuard no_grad;
      attn.set_use_fused(true);
      fused_out = attn.Forward(x, &drop1);
      attn.set_use_fused(false);
      ref_out = attn.Forward(x, &drop2);
    }
    EXPECT_LE(MaxAbsDiff(fused_out, ref_out), 1e-5f)
        << "grad_mode=" << grad_mode;
    EXPECT_EQ(drop1.NextU64(), drop2.NextU64())
        << "paths consumed different draw counts, grad_mode=" << grad_mode;
  }
}

TEST(AttentionFusionTest, TrainEvalGradNoGradMatrix) {
  core::Rng init(61);
  nn::MultiHeadSelfAttention attn(16, 4, 0.2f, &init);
  Tensor x = RandomTensor({10, 16}, 62);
  for (bool training : {true, false}) {
    for (bool grad : {true, false}) {
      attn.SetTraining(training);
      Tensor fused_out, ref_out;
      {
        std::unique_ptr<tensor::NoGradGuard> guard;
        if (!grad) guard = std::make_unique<tensor::NoGradGuard>();
        core::Rng drop1(7), drop2(7);
        attn.set_use_fused(true);
        fused_out = attn.Forward(x, &drop1);
        attn.set_use_fused(false);
        ref_out = attn.Forward(x, &drop2);
      }
      EXPECT_LE(MaxAbsDiff(fused_out, ref_out), 1e-5f)
          << "training=" << training << " grad=" << grad;
      if (!grad) {
        // No-grad forwards must be graph-free on both paths.
        EXPECT_TRUE(fused_out.impl()->parents.empty());
        EXPECT_FALSE(static_cast<bool>(fused_out.impl()->backward_fn));
      }
    }
  }
}

TEST(AttentionFusionTest, DeterministicAcrossPoolSizes) {
  // T=70 x 4 heads spans several (head, row-tile) tasks; the fused
  // forward and backward must be bitwise identical at every pool size.
  core::Rng init(71);
  nn::MultiHeadSelfAttention attn(32, 4, 0.0f, &init);
  attn.Train();
  Tensor x = RandomTensor({70, 32}, 72, /*requires_grad=*/true);

  std::vector<float> out1, grads1;
  {
    ScopedPoolSize pool(1);
    attn.ZeroGrad();
    x.ZeroGrad();
    Tensor out = attn.Forward(x, nullptr);
    ops::Sum(out).Backward();
    out1.assign(out.data(), out.data() + out.numel());
    for (const auto& np : attn.NamedParameters()) {
      grads1.insert(grads1.end(), np.param.grad(),
                    np.param.grad() + np.param.numel());
    }
  }
  std::vector<float> out4, grads4;
  {
    ScopedPoolSize pool(4);
    attn.ZeroGrad();
    x.ZeroGrad();
    Tensor out = attn.Forward(x, nullptr);
    ops::Sum(out).Backward();
    out4.assign(out.data(), out.data() + out.numel());
    for (const auto& np : attn.NamedParameters()) {
      grads4.insert(grads4.end(), np.param.grad(),
                    np.param.grad() + np.param.numel());
    }
  }
  ASSERT_EQ(out1.size(), out4.size());
  EXPECT_EQ(0, std::memcmp(out1.data(), out4.data(),
                           sizeof(float) * out1.size()));
  ASSERT_EQ(grads1.size(), grads4.size());
  EXPECT_EQ(0, std::memcmp(grads1.data(), grads4.data(),
                           sizeof(float) * grads1.size()));
}

TEST(AttentionFusionTest, EvalPathIsArenaSteadyState) {
  core::Rng init(81);
  nn::MultiHeadSelfAttention attn(16, 4, 0.1f, &init);
  attn.Eval();
  Tensor x = RandomTensor({33, 16}, 82);
  tensor::NoGradGuard no_grad;
  tensor::ScratchArena arena;
  tensor::ScratchArena::Scope scope(&arena);
  for (int i = 0; i < 3; ++i) attn.Forward(x, nullptr);
  const int64_t warm = arena.fresh_count();
  for (int i = 0; i < 5; ++i) attn.Forward(x, nullptr);
  EXPECT_EQ(arena.fresh_count(), warm);
  EXPECT_GT(arena.reuse_count(), 0);
}

}  // namespace
}  // namespace promptem
