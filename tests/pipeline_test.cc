// Tests for the streaming candidate pipeline: the Blocker streaming
// contract (chunk-size and pool-size invariance, the unlabeled-candidate
// sentinel), the seeded synthetic table generator, MinHash-LSH blocking
// recall, and em::MatchPipeline's bitwise parity with one-shot ScoreBatch
// over the same candidates. Runs under both sanitizer wirings and the
// `pipeline` ctest label.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/benchmarks.h"
#include "data/blocking.h"
#include "data/serializer.h"
#include "data/synthetic.h"
#include "lm/pretrained_lm.h"
#include "pipeline/match_pipeline.h"
#include "promptem/finetune_model.h"
#include "promptem/metrics.h"
#include "promptem/promptem.h"
#include "promptem/scoring.h"
#include "promptem/uncertainty.h"
#include "text/vocab.h"

namespace promptem {
namespace {

const lm::PretrainedLM& FixtureLM() {
  static const lm::PretrainedLM* kLm = [] {
    auto loaded =
        lm::PretrainedLM::Load("tests/data/promptem_integration_lm");
    if (!loaded.ok()) {
      std::fprintf(stderr,
                   "fixture LM missing (%s); tests must run from the repo "
                   "root\n",
                   loaded.status().ToString().c_str());
      std::abort();
    }
    return loaded.value().release();
  }();
  return *kLm;
}

/// Pool-size override scoped to one expression.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(core::GetNumThreads()) {
    core::SetNumThreads(n);
  }
  ~ScopedThreads() { core::SetNumThreads(saved_); }

 private:
  int saved_;
};

/// Drains `blocker` pulling `chunk` candidates at a time, checking the
/// NextChunk contract along the way.
std::vector<data::PairExample> DrainWithChunk(data::Blocker* blocker,
                                              size_t chunk) {
  blocker->Reset();
  std::vector<data::PairExample> all;
  std::vector<data::PairExample> buf;
  while (true) {
    buf.clear();
    const size_t n = blocker->NextChunk(chunk, &buf);
    EXPECT_EQ(n, buf.size());
    EXPECT_LE(n, chunk);
    if (n == 0) break;
    all.insert(all.end(), buf.begin(), buf.end());
  }
  return all;
}

bool SamePairs(const std::vector<data::PairExample>& a,
               const std::vector<data::PairExample>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].left_index != b[i].left_index ||
        a[i].right_index != b[i].right_index || a[i].label != b[i].label) {
      return false;
    }
  }
  return true;
}

std::vector<data::PairExample> GoldPositives(const data::GemDataset& ds) {
  std::vector<data::PairExample> gold;
  for (const auto* pairs : {&ds.train, &ds.valid, &ds.test}) {
    for (const auto& p : *pairs) {
      if (p.label == 1) gold.push_back(p);
    }
  }
  return gold;
}

// ---------------------------------------------------------------------------
// Blocker streaming contract
// ---------------------------------------------------------------------------

TEST(BlockerTest, AllPairsStreamsRowMajorCrossProduct) {
  data::AllPairsBlocker blocker(7, 5);
  const auto all = DrainWithChunk(&blocker, 4);
  ASSERT_EQ(all.size(), 35u);
  size_t i = 0;
  for (int l = 0; l < 7; ++l) {
    for (int r = 0; r < 5; ++r, ++i) {
      EXPECT_EQ(all[i].left_index, l);
      EXPECT_EQ(all[i].right_index, r);
      EXPECT_EQ(all[i].label, data::kUnlabeledLabel);
    }
  }
  blocker.Reset();
  EXPECT_TRUE(SamePairs(blocker.Drain(), all));
}

TEST(BlockerTest, EveryBlockerEmitsTheUnlabeledSentinel) {
  const data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 7);
  data::AllPairsBlocker allpairs(3, 3);
  data::OverlapBlocker overlap(ds.left_table, ds.right_table);
  data::MinHashBlocker minhash(ds.left_table, ds.right_table);
  for (data::Blocker* blocker :
       std::vector<data::Blocker*>{&allpairs, &overlap, &minhash}) {
    const auto candidates = DrainWithChunk(blocker, 64);
    ASSERT_FALSE(candidates.empty()) << blocker->Name();
    for (const auto& p : candidates) {
      ASSERT_EQ(p.label, data::kUnlabeledLabel) << blocker->Name();
    }
  }
}

TEST(BlockerTest, StreamIsChunkSizeInvariant) {
  const data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 7);
  data::OverlapBlocker overlap(ds.left_table, ds.right_table);
  data::MinHashBlocker minhash(ds.left_table, ds.right_table);
  for (data::Blocker* blocker :
       std::vector<data::Blocker*>{&overlap, &minhash}) {
    const auto reference = DrainWithChunk(blocker, 1u << 20);
    ASSERT_FALSE(reference.empty()) << blocker->Name();
    for (const size_t chunk : {size_t{1}, size_t{3}, size_t{17}}) {
      EXPECT_TRUE(SamePairs(DrainWithChunk(blocker, chunk), reference))
          << blocker->Name() << " chunk=" << chunk;
    }
  }
}

TEST(BlockerTest, StreamIsPoolSizeInvariant) {
  const data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 7);
  // The pool size is pinned across *construction* too: tokenization /
  // signature builds are part of the determinism contract.
  auto stream = [&ds](int threads, bool use_minhash) {
    ScopedThreads scoped(threads);
    if (use_minhash) {
      data::MinHashBlocker blocker(ds.left_table, ds.right_table);
      return blocker.Drain();
    }
    data::OverlapBlocker blocker(ds.left_table, ds.right_table);
    return blocker.Drain();
  };
  for (const bool use_minhash : {false, true}) {
    const auto serial = stream(1, use_minhash);
    ASSERT_FALSE(serial.empty());
    EXPECT_TRUE(SamePairs(stream(4, use_minhash), serial));
    EXPECT_TRUE(SamePairs(stream(3, use_minhash), serial));
  }
}

TEST(BlockerTest, OverlapGenerateCandidatesMatchesStream) {
  const data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 7);
  data::OverlapBlocker::Config config;
  config.top_k = 5;
  data::OverlapBlocker blocker(ds.left_table, ds.right_table, config);
  EXPECT_TRUE(SamePairs(blocker.GenerateCandidates(config),
                        DrainWithChunk(&blocker, 37)));
}

// ---------------------------------------------------------------------------
// Synthetic workload generator
// ---------------------------------------------------------------------------

TEST(SyntheticTest, GoldMappingIsConsistent) {
  data::SyntheticTableOptions options;
  options.rows = 400;
  options.seed = 11;
  const data::SyntheticTables tables =
      data::GenerateSyntheticTables(options);
  ASSERT_EQ(tables.left.size(), 400u);
  ASSERT_EQ(tables.right.size(), 440u);  // +10% distractors
  ASSERT_EQ(tables.right_of_left.size(), tables.left.size());
  ASSERT_EQ(tables.left_of_right.size(), tables.right.size());
  size_t matched_rights = 0;
  for (int l = 0; l < 400; ++l) {
    const int r = tables.right_of_left[static_cast<size_t>(l)];
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 440);
    EXPECT_EQ(tables.left_of_right[static_cast<size_t>(r)], l);
    EXPECT_EQ(tables.GoldLabel(l, r), 1);
    EXPECT_EQ(tables.GoldLabel(l, (r + 1) % 440), 0);
  }
  for (const int l : tables.left_of_right) {
    if (l >= 0) ++matched_rights;
  }
  EXPECT_EQ(matched_rights, 400u);
  EXPECT_EQ(tables.GoldMatches().size(), 400u);
}

TEST(SyntheticTest, GenerationIsSeededAndPoolSizeInvariant) {
  data::SyntheticTableOptions options;
  options.rows = 300;
  options.seed = 5;
  auto generate = [&options](int threads) {
    ScopedThreads scoped(threads);
    return data::GenerateSyntheticTables(options);
  };
  const data::SyntheticTables a = generate(1);
  const data::SyntheticTables b = generate(4);
  ASSERT_EQ(a.right_of_left, b.right_of_left);
  for (size_t i = 0; i < a.left.size(); ++i) {
    ASSERT_EQ(data::SerializeRecord(a.left[i]),
              data::SerializeRecord(b.left[i]));
  }
  for (size_t i = 0; i < a.right.size(); ++i) {
    ASSERT_EQ(data::SerializeRecord(a.right[i]),
              data::SerializeRecord(b.right[i]));
  }
  // A different seed produces different content.
  options.seed = 6;
  const data::SyntheticTables c = data::GenerateSyntheticTables(options);
  EXPECT_NE(data::SerializeRecord(a.left[0]),
            data::SerializeRecord(c.left[0]));
}

TEST(SyntheticTest, ToDatasetSamplesLabeledGoldPairs) {
  data::SyntheticTableOptions options;
  options.rows = 200;
  options.seed = 9;
  data::SyntheticTables tables = data::GenerateSyntheticTables(options);
  const data::GemDataset ds = tables.ToDataset(/*pairs_per_split=*/50, 13);
  EXPECT_TRUE(tables.left.empty());  // tables moved into the dataset
  EXPECT_EQ(ds.left_table.size(), 200u);
  EXPECT_EQ(ds.right_table.size(), 220u);
  for (const auto* pairs : {&ds.train, &ds.valid, &ds.test}) {
    ASSERT_FALSE(pairs->empty());
    size_t positives = 0;
    for (const auto& p : *pairs) {
      ASSERT_GE(p.left_index, 0);
      ASSERT_LT(p.left_index, 200);
      ASSERT_GE(p.right_index, 0);
      ASSERT_LT(p.right_index, 220);
      // The gold mapping survives the move and agrees with the labels.
      ASSERT_EQ(p.label, tables.GoldLabel(p.left_index, p.right_index));
      positives += p.label == 1;
    }
    EXPECT_GT(positives, 0u);
    EXPECT_LT(positives, pairs->size());
  }
}

// ---------------------------------------------------------------------------
// Blocking quality
// ---------------------------------------------------------------------------

TEST(MinHashBlockerTest, RecallOnSyntheticWorkload) {
  data::SyntheticTableOptions options;
  options.rows = 2000;
  options.seed = 42;
  const data::SyntheticTables tables =
      data::GenerateSyntheticTables(options);
  data::MinHashBlocker blocker(tables.left, tables.right);
  const data::BlockingQuality quality =
      data::EvaluateBlockingStream(&blocker, tables.GoldMatches());
  EXPECT_GE(quality.pair_completeness, 0.9);
  EXPECT_GE(quality.reduction_ratio, 0.9);
  EXPECT_GT(quality.num_candidates, 0u);
}

TEST(BlockingQualityTest, StreamMatchesOneShotEvaluation) {
  const data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 7);
  const auto gold = GoldPositives(ds);
  ASSERT_FALSE(gold.empty());
  data::OverlapBlocker blocker(ds.left_table, ds.right_table);
  const data::BlockingQuality one_shot = data::EvaluateBlocking(
      blocker.Drain(), gold, ds.left_table.size(), ds.right_table.size());
  const data::BlockingQuality streamed =
      data::EvaluateBlockingStream(&blocker, gold, /*chunk_size=*/13);
  EXPECT_DOUBLE_EQ(streamed.pair_completeness, one_shot.pair_completeness);
  EXPECT_DOUBLE_EQ(streamed.reduction_ratio, one_shot.reduction_ratio);
  EXPECT_EQ(streamed.num_candidates, one_shot.num_candidates);
}

// ---------------------------------------------------------------------------
// Unlabeled-candidate sentinel
// ---------------------------------------------------------------------------

TEST(SentinelTest, MetricsSkipUnlabeledGold) {
  em::Metrics m;
  m.Count(1, data::kUnlabeledLabel);
  m.Count(0, data::kUnlabeledLabel);
  m.Count(1, 1);
  m.Count(0, 1);
  m.Count(1, 0);
  m.Count(0, 0);
  EXPECT_EQ(m.TotalCounted(), 4);
  EXPECT_EQ(m.tp, 1);
  EXPECT_EQ(m.fn, 1);
  EXPECT_EQ(m.fp, 1);
  EXPECT_EQ(m.tn, 1);

  const em::Metrics computed = em::ComputeMetrics(
      {1, 1, 0}, {data::kUnlabeledLabel, 1, data::kUnlabeledLabel});
  EXPECT_EQ(computed.TotalCounted(), 1);
  EXPECT_EQ(computed.tp, 1);
}

TEST(SentinelTest, El2nPruningRejectsUnlabeledPairs) {
  core::Rng rng(1);
  em::FinetuneModel model(FixtureLM(), &rng);
  std::vector<em::EncodedPair> xs(2);
  xs[0].left_ids = {7, 8, 9};
  xs[0].right_ids = {7, 8, 9};
  xs[0].label = 1;
  xs[1] = xs[0];
  xs[1].label = data::kUnlabeledLabel;
  core::Rng mc_rng(2);
  EXPECT_DEATH(em::McEl2nScoreBatch(&model, xs, 2, &mc_rng),
               "rejects unlabeled");
}

// ---------------------------------------------------------------------------
// MatchPipeline
// ---------------------------------------------------------------------------

TEST(MatchPipelineTest, ChunkedScoringBitwiseEqualsOneShot) {
  const data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 7);
  core::Rng rng(3);
  em::FinetuneModel model(FixtureLM(), &rng);
  em::PairEncoder encoder = em::MakePairEncoder(FixtureLM(), ds);

  data::AllPairsBlocker blocker(10, 8);
  const auto candidates = DrainWithChunk(&blocker, 1u << 20);
  const std::vector<em::ProbPair> reference =
      em::ScoreBatch(&model, encoder.EncodeAll(ds, candidates));

  const em::ChunkScoreFn scorer =
      em::MakeClassifierChunkScorer(&model, &encoder, &ds);
  for (const size_t chunk : {size_t{1}, size_t{7}, size_t{64}, size_t{128}}) {
    for (const int threads : {1, 4}) {
      ScopedThreads scoped(threads);
      std::vector<em::ProbPair> streamed;
      em::MatchPipelineConfig config;
      config.chunk_size = chunk;
      config.on_scored = [&streamed](const data::PairExample&,
                                     em::ProbPair p) {
        streamed.push_back(p);
      };
      em::MatchPipeline pipeline(&blocker, scorer, config);
      const em::MatchPipelineResult result = pipeline.Run();
      EXPECT_EQ(result.candidates, reference.size());
      EXPECT_LE(result.max_chunk, chunk);  // the memory bound
      ASSERT_EQ(streamed.size(), reference.size())
          << "chunk=" << chunk << " threads=" << threads;
      for (size_t i = 0; i < reference.size(); ++i) {
        // Bitwise: ScoreBatch's eval forwards are per-sample
        // deterministic, so chunking cannot perturb a single bit.
        ASSERT_EQ(streamed[i][0], reference[i][0]) << i;
        ASSERT_EQ(streamed[i][1], reference[i][1]) << i;
      }
    }
  }
}

TEST(MatchPipelineTest, FoldIsChunkSizeInvariant) {
  data::SyntheticTableOptions options;
  options.rows = 300;
  options.seed = 21;
  const data::SyntheticTables tables =
      data::GenerateSyntheticTables(options);
  // Cheap deterministic stand-in for the model: probability from a hash
  // of the pair, so every chunk size sees identical per-pair scores.
  const em::ChunkScoreFn scorer =
      [](const std::vector<data::PairExample>& chunk) {
        std::vector<em::ProbPair> probs(chunk.size());
        for (size_t i = 0; i < chunk.size(); ++i) {
          const uint64_t h =
              ((static_cast<uint64_t>(static_cast<uint32_t>(
                    chunk[i].left_index))
                << 32) ^
               static_cast<uint32_t>(chunk[i].right_index)) *
              0x9E3779B97F4A7C15ULL;
          const float pos = static_cast<float>((h >> 40) & 0xFFFF) / 65535.0f;
          probs[i] = {1.0f - pos, pos};
        }
        return probs;
      };
  auto run = [&](size_t chunk) {
    data::MinHashBlocker blocker(tables.left, tables.right);
    em::MatchPipelineConfig config;
    config.chunk_size = chunk;
    config.top_k_matches = 25;
    // Label only even left rows, so the unlabeled path is exercised too.
    config.gold_label = [&tables](int l, int r) {
      return l % 2 == 0 ? tables.GoldLabel(l, r) : data::kUnlabeledLabel;
    };
    em::MatchPipeline pipeline(&blocker, scorer, config);
    return pipeline.Run();
  };
  const em::MatchPipelineResult reference = run(1u << 20);
  ASSERT_GT(reference.candidates, 0u);
  EXPECT_EQ(reference.labeled + reference.unlabeled, reference.candidates);
  EXPECT_EQ(static_cast<size_t>(reference.metrics.TotalCounted()),
            reference.labeled);
  ASSERT_EQ(reference.top_matches.size(), 25u);
  for (size_t i = 1; i < reference.top_matches.size(); ++i) {
    EXPECT_GE(reference.top_matches[i - 1].pos_prob,
              reference.top_matches[i].pos_prob);
  }
  for (const size_t chunk : {size_t{1}, size_t{17}, size_t{256}}) {
    const em::MatchPipelineResult r = run(chunk);
    EXPECT_EQ(r.candidates, reference.candidates) << chunk;
    EXPECT_EQ(r.matches, reference.matches) << chunk;
    EXPECT_EQ(r.labeled, reference.labeled) << chunk;
    EXPECT_EQ(r.metrics.tp, reference.metrics.tp) << chunk;
    EXPECT_EQ(r.metrics.fp, reference.metrics.fp) << chunk;
    EXPECT_EQ(r.metrics.tn, reference.metrics.tn) << chunk;
    EXPECT_EQ(r.metrics.fn, reference.metrics.fn) << chunk;
    ASSERT_EQ(r.top_matches.size(), reference.top_matches.size()) << chunk;
    for (size_t i = 0; i < r.top_matches.size(); ++i) {
      EXPECT_EQ(r.top_matches[i].left_index,
                reference.top_matches[i].left_index);
      EXPECT_EQ(r.top_matches[i].right_index,
                reference.top_matches[i].right_index);
      EXPECT_EQ(r.top_matches[i].pos_prob,
                reference.top_matches[i].pos_prob);
    }
  }
}

}  // namespace
}  // namespace promptem
