// Tests for the neural-network layer library: module tree, layers,
// attention/transformer/LSTM shapes and gradients, the AdamW optimizer,
// and checkpoint serialization.

#include <cmath>
#include <cstdio>
#include <cstring>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/transformer.h"
#include "tensor/ops.h"

namespace promptem::nn {
namespace {

namespace ops = tensor::ops;

TEST(ModuleTest, NamedParametersAreDotted) {
  core::Rng rng(1);
  Mlp mlp({4, 8, 2}, &rng);
  bool found = false;
  for (const auto& np : mlp.NamedParameters()) {
    if (np.name == "fc0.weight") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ModuleTest, NumParamsCountsEverything) {
  core::Rng rng(1);
  Linear linear(3, 5, &rng);
  EXPECT_EQ(linear.NumParams(), 3 * 5 + 5);
  Linear no_bias(3, 5, &rng, /*bias=*/false);
  EXPECT_EQ(no_bias.NumParams(), 15);
}

TEST(ModuleTest, TrainingModePropagates) {
  core::Rng rng(1);
  Mlp mlp({4, 8, 2}, &rng, 0.5f);
  mlp.SetTraining(false);
  EXPECT_FALSE(mlp.training());
  mlp.SetTraining(true);
  EXPECT_TRUE(mlp.training());
}

TEST(ModuleTest, ZeroGradClearsAll) {
  core::Rng rng(1);
  Linear linear(2, 2, &rng);
  tensor::Tensor x = tensor::Tensor::Full({1, 2}, 1.0f);
  ops::Sum(linear.Forward(x)).Backward();
  linear.ZeroGrad();
  for (auto& p : linear.Parameters()) {
    for (int64_t i = 0; i < p.numel(); ++i) {
      EXPECT_EQ(p.grad()[i], 0.0f);
    }
  }
}

TEST(InitTest, XavierBounded) {
  core::Rng rng(3);
  tensor::Tensor w = tensor::Tensor::Zeros({16, 16});
  XavierInit(&w, &rng);
  const float bound = std::sqrt(6.0f / 32.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w.data()[i]), bound);
  }
}

TEST(LinearTest, ForwardShapeAndValue) {
  core::Rng rng(1);
  Linear linear(2, 3, &rng);
  // Overwrite with known weights: y = x @ W^T + b.
  std::vector<float> w = {1, 0, 0, 1, 1, 1};  // [3, 2]
  std::memcpy(const_cast<tensor::Tensor&>(linear.weight()).data(), w.data(),
              sizeof(float) * 6);
  const_cast<tensor::Tensor&>(linear.bias()).set(2, 10.0f);
  tensor::Tensor x = tensor::Tensor::FromValues({1, 2}, {2, 3});
  tensor::Tensor y = linear.Forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 15.0f);
}

TEST(EmbeddingTest, LookupRowsMatchTable) {
  core::Rng rng(1);
  Embedding emb(10, 4, &rng);
  tensor::Tensor out = emb.Forward({3, 3, 7});
  EXPECT_EQ(out.dim(0), 3);
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(out.at(0, j), out.at(1, j));
    EXPECT_EQ(out.at(0, j), emb.table().at(3, j));
  }
}

TEST(LayerNormLayerTest, OutputNormalized) {
  LayerNormLayer ln(8);
  tensor::Tensor x = tensor::Tensor::FromValues(
      {1, 8}, {1, 2, 3, 4, 5, 6, 7, 8});
  tensor::Tensor y = ln.Forward(x);
  float mean = 0.0f;
  for (int j = 0; j < 8; ++j) mean += y.at(0, j);
  EXPECT_NEAR(mean / 8.0f, 0.0f, 1e-4f);
}

TEST(DropoutLayerTest, InactiveInEvalMode) {
  core::Rng rng(1);
  DropoutLayer dropout(0.9f);
  dropout.SetTraining(false);
  tensor::Tensor x = tensor::Tensor::Full({10}, 1.0f);
  tensor::Tensor y = dropout.Forward(x, &rng);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(y.at(i), 1.0f);
}

TEST(AttentionTest, OutputShapePreserved) {
  core::Rng rng(1);
  MultiHeadSelfAttention attn(16, 4, 0.0f, &rng);
  attn.SetTraining(false);
  tensor::Tensor x = tensor::Tensor::Zeros({5, 16});
  NormalInit(&x, 1.0f, &rng);
  tensor::Tensor y = attn.Forward(x, &rng);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 16);
}

TEST(AttentionTest, GradientsReachAllProjections) {
  core::Rng rng(2);
  MultiHeadSelfAttention attn(8, 2, 0.0f, &rng);
  tensor::Tensor x = tensor::Tensor::Zeros({3, 8});
  NormalInit(&x, 1.0f, &rng);
  attn.ZeroGrad();
  ops::Sum(attn.Forward(x, &rng)).Backward();
  for (const auto& np : attn.NamedParameters()) {
    float norm = 0.0f;
    for (int64_t i = 0; i < np.param.numel(); ++i) {
      norm += std::fabs(np.param.grad()[i]);
    }
    EXPECT_GT(norm, 0.0f) << np.name;
  }
}

TransformerConfig TinyConfig() {
  TransformerConfig config;
  config.vocab_size = 50;
  config.max_seq_len = 16;
  config.dim = 8;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_dim = 16;
  config.dropout = 0.0f;
  return config;
}

TEST(TransformerTest, EncodeShape) {
  core::Rng rng(1);
  TransformerEncoder enc(TinyConfig(), &rng);
  enc.SetTraining(false);
  tensor::Tensor h = enc.Encode({1, 2, 3, 4}, &rng);
  EXPECT_EQ(h.dim(0), 4);
  EXPECT_EQ(h.dim(1), 8);
}

TEST(TransformerTest, MlmLogitsShape) {
  core::Rng rng(1);
  TransformerEncoder enc(TinyConfig(), &rng);
  enc.SetTraining(false);
  tensor::Tensor h = enc.Encode({1, 2, 3, 4}, &rng);
  tensor::Tensor logits = enc.MlmLogits(h, {1, 3});
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 50);
}

TEST(TransformerTest, DuplicateFlags) {
  auto flags = TransformerEncoder::DuplicateFlags({2, 10, 11, 10, 2});
  // id 2 is [CLS] (special): never flagged. id 10 duplicated: flagged.
  EXPECT_EQ(flags, (std::vector<int>{0, 1, 0, 1, 0}));
}

TEST(TransformerTest, DeterministicInEvalMode) {
  core::Rng rng(1);
  TransformerEncoder enc(TinyConfig(), &rng);
  enc.SetTraining(false);
  core::Rng r1(5), r2(99);
  tensor::Tensor a = enc.Encode({1, 2, 3}, &r1);
  tensor::Tensor b = enc.Encode({1, 2, 3}, &r2);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(TransformerTest, RejectsOverlongSequence) {
  core::Rng rng(1);
  TransformerEncoder enc(TinyConfig(), &rng);
  std::vector<int> ids(17, 1);
  EXPECT_DEATH(enc.Encode(ids, &rng), "max_seq_len");
}

TEST(LstmTest, OutputShape) {
  core::Rng rng(1);
  Lstm lstm(6, 4, &rng);
  tensor::Tensor x = tensor::Tensor::Zeros({5, 6});
  NormalInit(&x, 1.0f, &rng);
  tensor::Tensor h = lstm.Forward(x);
  EXPECT_EQ(h.dim(0), 5);
  EXPECT_EQ(h.dim(1), 4);
}

TEST(LstmTest, StateEvolves) {
  core::Rng rng(1);
  Lstm lstm(2, 3, &rng);
  tensor::Tensor x = tensor::Tensor::Full({4, 2}, 1.0f);
  tensor::Tensor h = lstm.Forward(x);
  // Constant input still changes hidden state across steps.
  bool any_diff = false;
  for (int j = 0; j < 3; ++j) {
    if (std::fabs(h.at(0, j) - h.at(3, j)) > 1e-6f) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BiLstmTest, ConcatenatesDirections) {
  core::Rng rng(1);
  BiLstm bilstm(4, 3, &rng);
  EXPECT_EQ(bilstm.output_dim(), 6);
  tensor::Tensor x = tensor::Tensor::Zeros({5, 4});
  NormalInit(&x, 1.0f, &rng);
  tensor::Tensor h = bilstm.Forward(x);
  EXPECT_EQ(h.dim(0), 5);
  EXPECT_EQ(h.dim(1), 6);
}

TEST(BiLstmTest, BackwardGradFlows) {
  core::Rng rng(2);
  BiLstm bilstm(3, 2, &rng);
  tensor::Tensor x = tensor::Tensor::Zeros({4, 3}, /*requires_grad=*/true);
  NormalInit(&x, 1.0f, &rng);
  x.ZeroGrad();
  ops::Sum(bilstm.Forward(x)).Backward();
  float norm = 0.0f;
  for (int64_t i = 0; i < x.numel(); ++i) norm += std::fabs(x.grad()[i]);
  EXPECT_GT(norm, 0.0f);
}

TEST(AdamWTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  tensor::Tensor w = tensor::Tensor::Zeros({4}, /*requires_grad=*/true);
  AdamWConfig config;
  config.lr = 0.1f;
  config.weight_decay = 0.0f;
  config.max_grad_norm = 0.0f;
  AdamW opt({w}, config);
  for (int step = 0; step < 300; ++step) {
    tensor::Tensor target = tensor::Tensor::Full({4}, 3.0f);
    tensor::Tensor diff = ops::Sub(w, target);
    tensor::Tensor loss = ops::Sum(ops::Mul(diff, diff));
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.at(i), 3.0f, 0.05f);
}

TEST(AdamWTest, WeightDecayShrinksWeights) {
  tensor::Tensor w = tensor::Tensor::Full({1}, 5.0f, true);
  AdamWConfig config;
  config.lr = 0.1f;
  config.weight_decay = 0.5f;
  AdamW opt({w}, config);
  w.ZeroGrad();  // zero gradient: only decay acts
  opt.Step();
  EXPECT_LT(w.at(0), 5.0f);
}

TEST(AdamWTest, GradClippingBoundsUpdate) {
  tensor::Tensor w = tensor::Tensor::Zeros({1}, true);
  AdamWConfig config;
  config.lr = 1.0f;
  config.max_grad_norm = 1e-6f;
  config.weight_decay = 0.0f;
  AdamW opt({w}, config);
  w.ZeroGrad();
  w.grad()[0] = 1e6f;
  opt.Step();
  // Clipped to tiny norm: Adam normalizes, but m/v ratio stays bounded;
  // the step must not explode.
  EXPECT_LT(std::fabs(w.at(0)), 1.1f);
}

TEST(WarmupTest, LinearRamp) {
  EXPECT_FLOAT_EQ(WarmupLr(1.0f, 5, 10), 0.5f);
  EXPECT_FLOAT_EQ(WarmupLr(1.0f, 10, 10), 1.0f);
  EXPECT_FLOAT_EQ(WarmupLr(1.0f, 50, 10), 1.0f);
  EXPECT_FLOAT_EQ(WarmupLr(1.0f, 1, 0), 1.0f);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  core::Rng rng(1);
  Mlp a({4, 6, 2}, &rng);
  const std::string path = "/tmp/promptem_test_ckpt.bin";
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  core::Rng rng2(999);
  Mlp b({4, 6, 2}, &rng2);
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i].param.numel(); ++j) {
      EXPECT_EQ(pa[i].param.data()[j], pb[i].param.data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsShapeMismatch) {
  core::Rng rng(1);
  Mlp a({4, 6, 2}, &rng);
  const std::string path = "/tmp/promptem_test_ckpt2.bin";
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  Mlp b({4, 8, 2}, &rng);
  EXPECT_FALSE(LoadCheckpoint(&b, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadMissingFileFails) {
  core::Rng rng(1);
  Mlp a({2, 2}, &rng);
  EXPECT_FALSE(LoadCheckpoint(&a, "/tmp/does_not_exist_promptem").ok());
}

// Bare parameter holder for serialization edge cases the real layers
// never produce (zero-element tensors, no parameters, duplicate names).
class ParamBag : public Module {
 public:
  tensor::Tensor Add(const std::string& name, tensor::Tensor t) {
    return RegisterParameter(name, std::move(t));
  }
};

TEST(SerializeTest, ZeroElementTensorRoundTrips) {
  ParamBag a;
  a.Add("empty", tensor::Tensor::Zeros({0, 3}, true));
  tensor::Tensor w = a.Add("w", tensor::Tensor::Zeros({2, 2}, true));
  w.data()[3] = 7.0f;
  const std::string path = "/tmp/promptem_test_ckpt_zero.bin";
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ParamBag b;
  b.Add("empty", tensor::Tensor::Zeros({0, 3}, true));
  tensor::Tensor w2 = b.Add("w", tensor::Tensor::Zeros({2, 2}, true));
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  EXPECT_EQ(w2.at(1, 1), 7.0f);
  std::remove(path.c_str());
}

TEST(SerializeTest, EmptyModuleRoundTrips) {
  ParamBag a;
  const std::string path = "/tmp/promptem_test_ckpt_empty.bin";
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ParamBag b;
  EXPECT_TRUE(LoadCheckpoint(&b, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, DuplicateParamNamesRejectedOnSave) {
  ParamBag a;
  a.Add("w", tensor::Tensor::Zeros({2}, true));
  a.Add("w", tensor::Tensor::Zeros({2}, true));
  const std::string path = "/tmp/promptem_test_ckpt_dup.bin";
  core::Status st = SaveCheckpoint(a, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveToUnwritablePathReturnsStatus) {
  core::Rng rng(1);
  Mlp a({2, 2}, &rng);
  core::Status st = SaveCheckpoint(a, "/no_such_dir_promptem/x.ckpt");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::StatusCode::kIOError);
}

TEST(SerializeTest, NonStrictSkipsShapeMismatchWithWarning) {
  core::Rng rng(1);
  Mlp a({4, 6, 2}, &rng);
  const std::string path = "/tmp/promptem_test_ckpt_nonstrict.bin";
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  core::Rng rng2(2);
  Mlp b({5, 8, 3}, &rng2);  // every parameter shape differs from a's
  auto before = b.NamedParameters();
  std::vector<float> first_values;
  for (const auto& np : before) first_values.push_back(np.param.data()[0]);
  // Strict keeps the hard error; non-strict skips every mismatched entry
  // and leaves the module's own values untouched.
  EXPECT_FALSE(LoadCheckpoint(&b, path, /*strict=*/true).ok());
  EXPECT_TRUE(LoadCheckpoint(&b, path, /*strict=*/false).ok());
  auto after = b.NamedParameters();
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].param.data()[0], first_values[i]) << after[i].name;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, CopyParameters) {
  core::Rng rng1(1), rng2(2);
  Mlp a({3, 3}, &rng1);
  Mlp b({3, 3}, &rng2);
  ASSERT_TRUE(CopyParameters(a, &b).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i].numel(); ++j) {
      EXPECT_EQ(pa[i].data()[j], pb[i].data()[j]);
    }
  }
}

TEST(SerializeTest, CopyParametersRejectsArchMismatch) {
  core::Rng rng(1);
  Mlp a({3, 3}, &rng);
  Mlp b({3, 4}, &rng);
  EXPECT_FALSE(CopyParameters(a, &b).ok());
}

}  // namespace
}  // namespace promptem::nn
