// End-to-end integration tests: the full pipeline from benchmark
// generation through pre-training, low-resource splitting, PromptEM
// training, and evaluation — plus cross-method comparisons on an easy
// benchmark.

#include <gtest/gtest.h>

#include "baselines/common.h"
#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"
#include "nn/serialize.h"
#include "promptem/promptem.h"

namespace promptem {
namespace {

// The integration suite exercises the exact LM the benchmark harness
// uses: the shared pre-trained model, cached on disk at the repo root
// (first build takes minutes; all later runs load instantly).
const lm::PretrainedLM& IntegrationLM() {
  static const lm::PretrainedLM* kLm =
      lm::GetOrCreateSharedLM("promptem_shared_lm", 42).release();
  return *kLm;
}

data::GemDataset EasyDataset() {
  return data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 42);
}

TEST(IntegrationTest, PromptEmBeatsChanceOnEasyBenchmark) {
  data::GemDataset ds = EasyDataset();
  core::Rng rng(1);
  data::LowResourceSplit split = data::MakeLowResourceSplit(ds, 0.2, &rng);
  baselines::RunOptions options;
  options.epochs = 8;
  options.student_epochs = 8;
  auto result = baselines::RunMethod(baselines::Method::kPromptEM,
                                     IntegrationLM(),
                                     data::BenchmarkKind::kRelHeter, ds,
                                     split, options);
  // Chance F1 (predict all positive) is ~0.5 at a 1/3 positive rate.
  EXPECT_GT(result.test.F1(), 0.6);
}

TEST(IntegrationTest, FewShotPromptTuningLearns) {
  // With a handful of labels, prompt-tuning must reach far-above-chance
  // F1 on the easiest benchmark — the paper's core low-resource claim.
  data::GemDataset ds = EasyDataset();
  em::PairEncoder encoder = em::MakePairEncoder(IntegrationLM(), ds);
  core::Rng rng(2);
  data::LowResourceSplit split = data::MakeLowResourceSplit(ds, 0.10, &rng);
  auto labeled = encoder.EncodeAll(ds, split.labeled);
  auto valid = encoder.EncodeAll(ds, split.valid);
  auto test = encoder.EncodeAll(ds, split.test);
  core::Rng model_rng(2);
  em::PromptModel model(IntegrationLM(), em::PromptModelConfig{},
                        &model_rng);
  em::TrainOptions options;
  options.epochs = 10;
  em::TrainClassifier(&model, labeled, valid, options);
  // Predict-all-positive scores ~0.5 F1 at a 1/3 positive rate.
  EXPECT_GT(em::Evaluate(&model, test).F1(), 0.6);
}

TEST(IntegrationTest, FewShotPromptCompetitiveWithFreshHead) {
  // The objective-form gap (Challenge I): reusing the pre-trained MLM
  // head must be at least competitive with training a fresh
  // classification head on the same few labels.
  data::GemDataset ds = EasyDataset();
  em::PairEncoder encoder = em::MakePairEncoder(IntegrationLM(), ds);
  core::Rng rng(3);
  data::LowResourceSplit split = data::MakeLowResourceSplit(ds, 0.10, &rng);
  auto labeled = encoder.EncodeAll(ds, split.labeled);
  auto valid = encoder.EncodeAll(ds, split.valid);
  auto test = encoder.EncodeAll(ds, split.test);
  em::TrainOptions options;
  options.epochs = 10;
  core::Rng prompt_rng(3);
  em::PromptModel prompt(IntegrationLM(), em::PromptModelConfig{},
                         &prompt_rng);
  em::TrainClassifier(&prompt, labeled, valid, options);
  core::Rng ft_rng(3);
  em::FinetuneModel finetune(IntegrationLM(), &ft_rng);
  em::TrainClassifier(&finetune, labeled, valid, options);
  EXPECT_GT(em::Evaluate(&prompt, test).F1() + 0.15,
            em::Evaluate(&finetune, test).F1());
}

TEST(IntegrationTest, SelfTrainingPipelineImprovesOrMatchesTeacher) {
  data::GemDataset ds = EasyDataset();
  core::Rng rng(4);
  data::LowResourceSplit split = data::MakeLowResourceSplit(ds, 0.15, &rng);
  baselines::RunOptions options;
  options.epochs = 6;
  options.student_epochs = 6;

  auto full = baselines::RunMethod(baselines::Method::kPromptEM,
                                   IntegrationLM(),
                                   data::BenchmarkKind::kRelHeter, ds, split,
                                   options);
  auto no_lst = baselines::RunMethod(baselines::Method::kPromptEMNoLST,
                                     IntegrationLM(),
                                     data::BenchmarkKind::kRelHeter, ds,
                                     split, options);
  // Best-on-validation selection includes the teacher, so LST can only
  // help or tie on validation; on test we allow small regressions.
  EXPECT_GE(full.valid.F1() + 1e-9, no_lst.valid.F1() - 0.15);
}

TEST(IntegrationTest, CheckpointRoundTripPreservesPredictions) {
  data::GemDataset ds = EasyDataset();
  em::PairEncoder encoder = em::MakePairEncoder(IntegrationLM(), ds);
  auto test = encoder.EncodeAll(ds, ds.test);
  core::Rng rng(5);
  em::FinetuneModel a(IntegrationLM(), &rng);
  const std::string path = "/tmp/promptem_integration_ckpt.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(a, path).ok());
  core::Rng rng2(999);
  em::FinetuneModel b(IntegrationLM(), &rng2);
  ASSERT_TRUE(nn::LoadCheckpoint(&b, path).ok());
  EXPECT_EQ(em::PredictLabels(&a, test), em::PredictLabels(&b, test));
  std::remove(path.c_str());
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  data::GemDataset ds = EasyDataset();
  core::Rng rng_a(6);
  core::Rng rng_b(6);
  auto split_a = data::MakeLowResourceSplit(ds, 0.2, &rng_a);
  auto split_b = data::MakeLowResourceSplit(ds, 0.2, &rng_b);
  baselines::RunOptions options;
  options.epochs = 3;
  options.student_epochs = 3;
  auto a = baselines::RunMethod(baselines::Method::kPromptEMNoLST,
                                IntegrationLM(),
                                data::BenchmarkKind::kRelHeter, ds, split_a,
                                options);
  auto b = baselines::RunMethod(baselines::Method::kPromptEMNoLST,
                                IntegrationLM(),
                                data::BenchmarkKind::kRelHeter, ds, split_b,
                                options);
  EXPECT_EQ(a.test.tp, b.test.tp);
  EXPECT_EQ(a.test.fp, b.test.fp);
  EXPECT_EQ(a.test.fn, b.test.fn);
}

}  // namespace
}  // namespace promptem
