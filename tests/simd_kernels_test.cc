// Parity and determinism coverage for the kernel-variant dispatch
// (tensor/kernels.h): the hand-written AVX2 micro-kernels against the
// portable scalar reference, the shared fast expf against libm, the int8
// GEMM's exactness contract, and pool-size bitwise determinism for every
// new kernel. AVX2-vs-scalar comparisons GTEST_SKIP on hardware without
// AVX2 (the scalar half still runs through the dispatch wrappers there).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace promptem {
namespace {

namespace kernels = tensor::kernels;
namespace quant = tensor::quant;
using kernels::KernelVariant;
using kernels::ScopedKernelVariant;

/// Shapes that exercise every microtile tail at once: single row/col,
/// k = 1, primes, one-off-the-register-width, and multiples of the 4/8/16
/// blocking factors.
const int kShapeAxis[] = {1, 2, 3, 5, 8, 13, 16, 17, 31, 33};

std::vector<float> RandomVec(size_t n, core::Rng* rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng->Gaussian();
  return v;
}

bool BitsEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Max |a-b| / max(1, |b|) over two buffers.
float MaxRelDiff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  float worst = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    const float denom = std::max(1.0f, std::fabs(b[i]));
    worst = std::max(worst, std::fabs(a[i] - b[i]) / denom);
  }
  return worst;
}

TEST(FastExpfTest, MatchesLibmOnSoftmaxDomain) {
  // The post-max-subtraction domain every softmax feeds it, down to the
  // documented clamp at -80 (below it FastExpf intentionally returns
  // exp(-80) ~ 2e-35; see the EdgeCases test).
  float worst = 0.0f;
  for (float x = -80.0f; x <= 0.0f; x += 0.001f) {
    const float got = kernels::FastExpf(x);
    const float want = std::exp(x);
    const float rel = want > 0.0f ? std::fabs(got - want) / want : 0.0f;
    worst = std::max(worst, rel);
  }
  // The Cephes-style polynomial is good to ~1.2e-7 relative; allow a
  // whisker of slack for the clamp region.
  EXPECT_LE(worst, 2.0e-7f) << "worst relative error " << worst;
}

TEST(FastExpfTest, EdgeCases) {
  EXPECT_EQ(kernels::FastExpf(0.0f), 1.0f);
  // Deep negative clamps to exp(-80) instead of underflowing the 2^e trick.
  EXPECT_NEAR(kernels::FastExpf(-1000.0f), std::exp(-80.0f),
              std::exp(-80.0f) * 1e-5f);
  EXPECT_TRUE(std::isnan(kernels::FastExpf(
      std::numeric_limits<float>::quiet_NaN())));
  // Moderate positive arguments stay accurate (log-sum-exp headroom).
  EXPECT_NEAR(kernels::FastExpf(10.0f), std::exp(10.0f),
              std::exp(10.0f) * 2e-7f);
}

TEST(KernelDispatchTest, ScopedVariantSwitchesAndRestores) {
  const KernelVariant ambient = kernels::ActiveKernelVariant();
  {
    ScopedKernelVariant scalar(KernelVariant::kScalar);
    EXPECT_EQ(kernels::ActiveKernelVariant(), KernelVariant::kScalar);
    {
      ScopedKernelVariant avx2(KernelVariant::kAvx2);
      if (kernels::CpuSupportsAvx2()) {
        EXPECT_EQ(kernels::ActiveKernelVariant(), KernelVariant::kAvx2);
      } else {
        EXPECT_EQ(kernels::ActiveKernelVariant(), KernelVariant::kScalar);
      }
    }
    EXPECT_EQ(kernels::ActiveKernelVariant(), KernelVariant::kScalar);
  }
  EXPECT_EQ(kernels::ActiveKernelVariant(), ambient);
}

TEST(KernelDispatchTest, VariantNames) {
  EXPECT_STREQ(kernels::KernelVariantName(KernelVariant::kScalar), "scalar");
  EXPECT_STREQ(kernels::KernelVariantName(KernelVariant::kAvx2), "avx2");
}

/// Runs Gemm over the full transpose matrix of awkward shapes in both
/// variants and checks the AVX2 result against scalar to tolerance.
/// GEMM reassociates (FMA + 8-lane trees), so parity is relative, scaled
/// by k (the dot length).
TEST(GemmParityTest, Avx2MatchesScalarOnAwkwardShapes) {
  if (!kernels::CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  core::Rng rng(42);
  for (bool trans_a : {false, true}) {
    for (bool trans_b : {false, true}) {
      for (int m : kShapeAxis) {
        for (int n : kShapeAxis) {
          for (int k : kShapeAxis) {
            const auto a =
                RandomVec(static_cast<size_t>(m) * k, &rng);
            const auto b =
                RandomVec(static_cast<size_t>(k) * n, &rng);
            const auto c0 = RandomVec(static_cast<size_t>(m) * n, &rng);
            std::vector<float> c_scalar = c0;
            std::vector<float> c_avx2 = c0;
            {
              ScopedKernelVariant scalar(KernelVariant::kScalar);
              kernels::Gemm(trans_a, trans_b, m, n, k, 0.7f, a.data(),
                            b.data(), 0.3f, c_scalar.data());
            }
            {
              ScopedKernelVariant avx2(KernelVariant::kAvx2);
              kernels::Gemm(trans_a, trans_b, m, n, k, 0.7f, a.data(),
                            b.data(), 0.3f, c_avx2.data());
            }
            const float tol =
                1e-6f * static_cast<float>(k) + 1e-6f;
            EXPECT_LE(MaxRelDiff(c_avx2, c_scalar), tol)
                << "trans_a=" << trans_a << " trans_b=" << trans_b
                << " m=" << m << " n=" << n << " k=" << k;
          }
        }
      }
    }
  }
}

/// GemmStrided with non-trivial leading dimensions (views into a wider
/// packed buffer — the fused-attention shape).
TEST(GemmParityTest, StridedAvx2MatchesScalar) {
  if (!kernels::CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  core::Rng rng(7);
  const int pad = 5;
  for (bool trans_a : {false, true}) {
    for (bool trans_b : {false, true}) {
      for (int m : {1, 3, 8, 17, 33}) {
        for (int n : {1, 2, 16, 31}) {
          for (int k : {1, 5, 8, 24}) {
            // Stored layouts are pre-transpose; pad every leading dim.
            const int a_rows = trans_a ? k : m;
            const int a_cols = trans_a ? m : k;
            const int b_rows = trans_b ? n : k;
            const int b_cols = trans_b ? k : n;
            const int lda = a_cols + pad;
            const int ldb = b_cols + pad;
            const int ldc = n + pad;
            const auto a =
                RandomVec(static_cast<size_t>(a_rows) * lda, &rng);
            const auto b =
                RandomVec(static_cast<size_t>(b_rows) * ldb, &rng);
            const auto c0 = RandomVec(static_cast<size_t>(m) * ldc, &rng);
            std::vector<float> c_scalar = c0;
            std::vector<float> c_avx2 = c0;
            {
              ScopedKernelVariant scalar(KernelVariant::kScalar);
              kernels::GemmStrided(trans_a, trans_b, m, n, k, 1.1f,
                                   a.data(), lda, b.data(), ldb, 0.5f,
                                   c_scalar.data(), ldc);
            }
            {
              ScopedKernelVariant avx2(KernelVariant::kAvx2);
              kernels::GemmStrided(trans_a, trans_b, m, n, k, 1.1f,
                                   a.data(), lda, b.data(), ldb, 0.5f,
                                   c_avx2.data(), ldc);
            }
            const float tol =
                1e-6f * static_cast<float>(k) + 1e-6f;
            EXPECT_LE(MaxRelDiff(c_avx2, c_scalar), tol)
                << "trans_a=" << trans_a << " trans_b=" << trans_b
                << " m=" << m << " n=" << n << " k=" << k;
            // Padding between rows must be untouched.
            for (int i = 0; i < m; ++i) {
              for (int p = n; p < ldc; ++p) {
                const size_t idx = static_cast<size_t>(i) * ldc + p;
                EXPECT_EQ(c_avx2[idx], c0[idx]);
              }
            }
          }
        }
      }
    }
  }
}

TEST(RowKernelParityTest, SoftmaxVariantsAgree) {
  if (!kernels::CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  core::Rng rng(3);
  for (int cols : kShapeAxis) {
    const int rows = 7;
    const auto x = RandomVec(static_cast<size_t>(rows) * cols, &rng);
    std::vector<float> y_scalar(x.size());
    std::vector<float> y_avx2(x.size());
    {
      ScopedKernelVariant scalar(KernelVariant::kScalar);
      kernels::SoftmaxRows(x.data(), rows, cols, y_scalar.data());
    }
    {
      ScopedKernelVariant avx2(KernelVariant::kAvx2);
      kernels::SoftmaxRows(x.data(), rows, cols, y_avx2.data());
    }
    EXPECT_LE(MaxRelDiff(y_avx2, y_scalar), 1e-5f) << "cols=" << cols;
    // Each row still sums to 1 within float tolerance.
    for (int i = 0; i < rows; ++i) {
      float s = 0.0f;
      for (int j = 0; j < cols; ++j) {
        s += y_avx2[static_cast<size_t>(i) * cols + j];
      }
      EXPECT_NEAR(s, 1.0f, 1e-5f);
    }
  }
}

TEST(RowKernelParityTest, LogSoftmaxVariantsAgree) {
  if (!kernels::CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  core::Rng rng(4);
  for (int cols : kShapeAxis) {
    const int rows = 5;
    const auto x = RandomVec(static_cast<size_t>(rows) * cols, &rng);
    std::vector<float> y_scalar(x.size());
    std::vector<float> y_avx2(x.size());
    {
      ScopedKernelVariant scalar(KernelVariant::kScalar);
      kernels::LogSoftmaxRows(x.data(), rows, cols, y_scalar.data());
    }
    {
      ScopedKernelVariant avx2(KernelVariant::kAvx2);
      kernels::LogSoftmaxRows(x.data(), rows, cols, y_avx2.data());
    }
    EXPECT_LE(MaxRelDiff(y_avx2, y_scalar), 1e-5f) << "cols=" << cols;
  }
}

TEST(RowKernelParityTest, LayerNormVariantsAgree) {
  if (!kernels::CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  core::Rng rng(5);
  for (int cols : kShapeAxis) {
    const int rows = 6;
    const auto x = RandomVec(static_cast<size_t>(rows) * cols, &rng);
    const auto gamma = RandomVec(cols, &rng);
    const auto beta = RandomVec(cols, &rng);
    std::vector<float> out_s(x.size()), out_v(x.size());
    std::vector<float> mean_s(rows), mean_v(rows);
    std::vector<float> rstd_s(rows), rstd_v(rows);
    {
      ScopedKernelVariant scalar(KernelVariant::kScalar);
      kernels::LayerNormForward(x.data(), rows, cols, gamma.data(),
                                beta.data(), 1e-5f, out_s.data(),
                                mean_s.data(), rstd_s.data());
    }
    {
      ScopedKernelVariant avx2(KernelVariant::kAvx2);
      kernels::LayerNormForward(x.data(), rows, cols, gamma.data(),
                                beta.data(), 1e-5f, out_v.data(),
                                mean_v.data(), rstd_v.data());
    }
    EXPECT_LE(MaxRelDiff(out_v, out_s), 1e-4f) << "cols=" << cols;
    EXPECT_LE(MaxRelDiff(mean_v, mean_s), 1e-5f);
    EXPECT_LE(MaxRelDiff(rstd_v, rstd_s), 1e-4f);
  }
}

/// The int8 GEMM is exact integer arithmetic: both variants must agree
/// bit for bit, and against a plain int32 reference loop.
TEST(Int8GemmTest, VariantsBitIdenticalAndExact) {
  core::Rng rng(11);
  for (int m : {1, 3, 8, 17}) {
    for (int n : {1, 2, 5, 16, 33}) {
      for (int k : {1, 7, 31, 32, 33, 64, 100}) {
        std::vector<uint8_t> a(static_cast<size_t>(m) * k);
        std::vector<int8_t> b(static_cast<size_t>(n) * k);
        // Worst-case magnitudes: the u7 contract's saturation headroom
        // is exactly what this exercises.
        for (auto& v : a) v = static_cast<uint8_t>(rng.NextU64(128));
        for (auto& v : b) {
          v = static_cast<int8_t>(rng.UniformInt(-127, 127));
        }
        std::vector<int32_t> want(static_cast<size_t>(m) * n);
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            int64_t s = 0;
            for (int p = 0; p < k; ++p) {
              s += static_cast<int64_t>(a[static_cast<size_t>(i) * k + p]) *
                   b[static_cast<size_t>(j) * k + p];
            }
            want[static_cast<size_t>(i) * n + j] =
                static_cast<int32_t>(s);
          }
        }
        std::vector<int32_t> got_scalar(want.size(), -1);
        std::vector<int32_t> got_active(want.size(), -1);
        {
          ScopedKernelVariant scalar(KernelVariant::kScalar);
          kernels::GemmInt8NT(m, n, k, a.data(), k, b.data(), k,
                              got_scalar.data(), n);
        }
        kernels::GemmInt8NT(m, n, k, a.data(), k, b.data(), k,
                            got_active.data(), n);
        EXPECT_EQ(got_scalar, want) << "m=" << m << " n=" << n << " k=" << k;
        EXPECT_EQ(got_active, want) << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(QuantizeTest, WeightRoundTripWithinHalfStep)
{
  core::Rng rng(21);
  const int rows = 9;
  const int cols = 33;
  auto w = RandomVec(static_cast<size_t>(rows) * cols, &rng);
  const quant::QuantizedWeight qw =
      quant::QuantizeWeightPerChannel(w.data(), rows, cols);
  ASSERT_EQ(qw.rows, rows);
  ASSERT_EQ(qw.cols, cols);
  for (int o = 0; o < rows; ++o) {
    float amax = 0.0f;
    int32_t sum = 0;
    for (int p = 0; p < cols; ++p) {
      const size_t idx = static_cast<size_t>(o) * cols + p;
      const float deq = qw.scales[o] * qw.data[idx];
      // Symmetric s8: round-trip error is at most half a quantization
      // step per element.
      EXPECT_LE(std::fabs(deq - w[idx]), 0.5f * qw.scales[o] + 1e-7f);
      amax = std::max(amax, std::fabs(w[idx]));
      sum += qw.data[idx];
    }
    EXPECT_NEAR(qw.scales[o], amax / 127.0f, 1e-9f);
    EXPECT_EQ(qw.row_sums[o], sum);
  }
}

TEST(QuantizeTest, ZeroChannelAndConstantRows) {
  // All-zero weight channel dequantizes to exactly zero.
  std::vector<float> w(8, 0.0f);
  const quant::QuantizedWeight qw =
      quant::QuantizeWeightPerChannel(w.data(), 1, 8);
  for (int8_t q : qw.data) EXPECT_EQ(q, 0);
  EXPECT_EQ(qw.scales[0], 1.0f);

  // Constant activation rows encode the value exactly, including the
  // negative and zero cases.
  for (float v : {0.0f, 2.5f, -3.75f}) {
    std::vector<float> x(11, v);
    std::vector<uint8_t> q(11);
    float scale = 0.0f;
    int32_t zero = -1;
    quant::QuantizeRowU7(x.data(), 11, q.data(), &scale, &zero);
    for (uint8_t code : q) {
      EXPECT_EQ(scale * (static_cast<int32_t>(code) - zero), v);
      EXPECT_LE(code, 127);
    }
    EXPECT_GE(zero, 0);
    EXPECT_LE(zero, 127);
  }
}

TEST(QuantizeTest, ActivationRoundTripWithinOneStep) {
  core::Rng rng(31);
  for (int n : {1, 2, 17, 64}) {
    const auto x = RandomVec(n, &rng);
    std::vector<uint8_t> q(n);
    float scale = 0.0f;
    int32_t zero = -1;
    quant::QuantizeRowU7(x.data(), n, q.data(), &scale, &zero);
    for (int j = 0; j < n; ++j) {
      EXPECT_LE(q[j], 127);
      const float deq = scale * (static_cast<int32_t>(q[j]) - zero);
      // Asymmetric u7: half a step of rounding plus up to half a step
      // from the zero-point's own rounding.
      EXPECT_LE(std::fabs(deq - x[j]), scale + 1e-6f)
          << "n=" << n << " j=" << j;
    }
  }
}

TEST(QuantizeTest, Int8LinearForwardApproximatesF32) {
  core::Rng rng(41);
  const int m = 6, k = 48, n = 10;
  const auto x = RandomVec(static_cast<size_t>(m) * k, &rng);
  const auto w = RandomVec(static_cast<size_t>(n) * k, &rng);
  const auto bias = RandomVec(n, &rng);
  const quant::QuantizedWeight qw =
      quant::QuantizeWeightPerChannel(w.data(), n, k);

  std::vector<float> y_f32(static_cast<size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int o = 0; o < n; ++o) {
      float s = bias[o];
      for (int p = 0; p < k; ++p) {
        s += x[static_cast<size_t>(i) * k + p] *
             w[static_cast<size_t>(o) * k + p];
      }
      y_f32[static_cast<size_t>(i) * n + o] = s;
    }
  }
  std::vector<float> y_q(static_cast<size_t>(m) * n, 0.0f);
  quant::Int8LinearForward(x.data(), m, k, qw, bias.data(), y_q.data());

  // 7-bit dynamic quantization on Gaussian data: ~1% of the row's dynamic
  // range per element, sqrt(k)-accumulated. Loose bound, tight enough to
  // catch a wrong zero-point/row_sums correction (which shifts results
  // by whole units).
  for (size_t i = 0; i < y_q.size(); ++i) {
    EXPECT_NEAR(y_q[i], y_f32[i], 0.35f) << "i=" << i;
  }
  float mean_abs = 0.0f;
  for (size_t i = 0; i < y_q.size(); ++i) {
    mean_abs += std::fabs(y_q[i] - y_f32[i]);
  }
  mean_abs /= static_cast<float>(y_q.size());
  EXPECT_LE(mean_abs, 0.08f);
}

TEST(QuantizeTest, CacheRebuildsOnGenerationBump) {
  std::vector<float> w = {1.0f, -2.0f, 3.0f, -4.0f};
  quant::QuantizedWeightCache cache;
  const quant::QuantizedWeight& q1 = cache.Get(w.data(), 2, 2);
  const int8_t first = q1.data[0];
  // Same generation: mutating w is NOT observed (cached image).
  w[0] = 100.0f;
  EXPECT_EQ(cache.Get(w.data(), 2, 2).data[0], first);
  // After a bump the cache requantizes from the new weights.
  quant::BumpQuantGeneration();
  EXPECT_NE(cache.Get(w.data(), 2, 2).data[0], first);
}

/// Every dispatched kernel must produce identical bits at any pool size
/// (the chunk decomposition is a pure function of the shape). Run the
/// pool sweep in whichever variant is active *and* pinned scalar.
class PoolDeterminismTest
    : public ::testing::TestWithParam<KernelVariant> {};

TEST_P(PoolDeterminismTest, GemmAllTransposesStableAcrossPoolSizes) {
  if (GetParam() == KernelVariant::kAvx2 && !kernels::CpuSupportsAvx2()) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  ScopedKernelVariant pin(GetParam());
  core::Rng rng(51);
  const int m = 67, n = 45, k = 33;
  const auto a = RandomVec(static_cast<size_t>(m) * k, &rng);
  const auto b = RandomVec(static_cast<size_t>(k) * n, &rng);
  for (bool trans_a : {false, true}) {
    for (bool trans_b : {false, true}) {
      std::vector<float> reference;
      for (int threads : {1, 2, 4}) {
        const int saved = core::GetNumThreads();
        core::SetNumThreads(threads);
        std::vector<float> c(static_cast<size_t>(m) * n, 0.25f);
        kernels::Gemm(trans_a, trans_b, m, n, k, 1.0f, a.data(), b.data(),
                      1.0f, c.data());
        core::SetNumThreads(saved);
        if (reference.empty()) {
          reference = c;
        } else {
          EXPECT_TRUE(BitsEqual(c, reference))
              << "trans_a=" << trans_a << " trans_b=" << trans_b
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST_P(PoolDeterminismTest, RowKernelsStableAcrossPoolSizes) {
  if (GetParam() == KernelVariant::kAvx2 && !kernels::CpuSupportsAvx2()) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  ScopedKernelVariant pin(GetParam());
  core::Rng rng(61);
  const int rows = 129, cols = 37;
  const auto x = RandomVec(static_cast<size_t>(rows) * cols, &rng);
  const auto gamma = RandomVec(cols, &rng);
  const auto beta = RandomVec(cols, &rng);
  std::vector<float> sm_ref, lsm_ref, ln_ref;
  for (int threads : {1, 2, 4}) {
    const int saved = core::GetNumThreads();
    core::SetNumThreads(threads);
    std::vector<float> sm(x.size()), lsm(x.size()), ln(x.size());
    std::vector<float> mean(rows), rstd(rows);
    kernels::SoftmaxRows(x.data(), rows, cols, sm.data());
    kernels::LogSoftmaxRows(x.data(), rows, cols, lsm.data());
    kernels::LayerNormForward(x.data(), rows, cols, gamma.data(),
                              beta.data(), 1e-5f, ln.data(), mean.data(),
                              rstd.data());
    core::SetNumThreads(saved);
    if (sm_ref.empty()) {
      sm_ref = sm;
      lsm_ref = lsm;
      ln_ref = ln;
    } else {
      EXPECT_TRUE(BitsEqual(sm, sm_ref)) << "threads=" << threads;
      EXPECT_TRUE(BitsEqual(lsm, lsm_ref)) << "threads=" << threads;
      EXPECT_TRUE(BitsEqual(ln, ln_ref)) << "threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, PoolDeterminismTest,
                         ::testing::Values(KernelVariant::kScalar,
                                           KernelVariant::kAvx2),
                         [](const auto& info) {
                           return std::string(
                               kernels::KernelVariantName(info.param));
                         });

}  // namespace
}  // namespace promptem
