// Tests for the record-cache layer (DESIGN.md §13): core::ConcurrentCache
// semantics under capacity pressure and concurrent use, the PairEncoder
// memo's bitwise neutrality at every pool size / cache state / capacity,
// cached scoring and embedding sweeps' parity with their uncached twins,
// the EmbeddingCache save/load round-trip, and IncrementalMatcher's
// delta-equals-full contract with O(delta) re-scoring.
//
// The contract everywhere: a cache may only change who computes, never
// what is computed — every comparison below is exact (bitwise) equality.
// Runs under the `cache` ctest label and both sanitizer wirings.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_cache.h"
#include "core/hashing.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/benchmarks.h"
#include "data/blocking.h"
#include "data/synthetic.h"
#include "lm/pretrained_lm.h"
#include "pipeline/incremental.h"
#include "promptem/embed_cache.h"
#include "promptem/encoding.h"
#include "promptem/finetune_model.h"
#include "promptem/promptem.h"
#include "promptem/scoring.h"

namespace promptem {
namespace {

namespace fs = std::filesystem;

const lm::PretrainedLM& FixtureLM() {
  static const lm::PretrainedLM* kLm = [] {
    auto loaded =
        lm::PretrainedLM::Load("tests/data/promptem_integration_lm");
    if (!loaded.ok()) {
      std::fprintf(stderr,
                   "fixture LM missing (%s); tests must run from the repo "
                   "root\n",
                   loaded.status().ToString().c_str());
      std::abort();
    }
    return loaded.value().release();
  }();
  return *kLm;
}

/// Pool-size override scoped to one expression.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(core::GetNumThreads()) {
    core::SetNumThreads(n);
  }
  ~ScopedThreads() { core::SetNumThreads(saved_); }

 private:
  int saved_;
};

bool SameEncoded(const std::vector<em::EncodedPair>& a,
                 const std::vector<em::EncodedPair>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].left_ids != b[i].left_ids || a[i].right_ids != b[i].right_ids ||
        a[i].label != b[i].label) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// core::ConcurrentCache semantics.
// ---------------------------------------------------------------------------

TEST(ConcurrentCacheTest, FindMissThenInsertHit) {
  core::ConcurrentCache<int> cache(16);
  EXPECT_EQ(cache.Find(7u), nullptr);
  cache.Insert(7u, 42);
  auto hit = cache.Find(7u);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ConcurrentCacheTest, FirstInsertWinsForSameKey) {
  // Duplicate inserts keep the existing value (callers cache pure
  // functions of the key, so a racing double-compute is bitwise
  // identical; first-wins makes the race harmless and cheap).
  core::ConcurrentCache<int> cache(16);
  auto first = cache.Insert(7u, 1);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(*first, 1);
  auto second = cache.Insert(7u, 2);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(*second, 1);
  auto hit = cache.Find(7u);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(cache.LiveEntries(), 1u);
  // Erase + reinsert is the way to replace a value.
  cache.Erase(7u);
  cache.Insert(7u, 2);
  EXPECT_EQ(*cache.Find(7u), 2);
}

TEST(ConcurrentCacheTest, CapacityBoundHolds) {
  // One shard so the bound is exact, not per-shard.
  core::ConcurrentCache<int> cache(16, 1);
  for (uint64_t k = 0; k < 128; ++k) {
    cache.Insert(k, static_cast<int>(k));
  }
  EXPECT_LE(cache.LiveEntries(), 16u);
  EXPECT_GE(cache.stats().evictions, 128u - 16u);
  // Whatever survived must still map key -> value correctly.
  size_t found = 0;
  for (uint64_t k = 0; k < 128; ++k) {
    if (auto hit = cache.Find(k)) {
      EXPECT_EQ(*hit, static_cast<int>(k));
      ++found;
    }
  }
  EXPECT_GT(found, 0u);
  EXPECT_LE(found, 16u);
}

TEST(ConcurrentCacheTest, ClockKeepsHotEntryUnderPressure) {
  core::ConcurrentCache<int> cache(8, 1);
  const uint64_t hot = 9999u;
  cache.Insert(hot, -1);
  for (uint64_t k = 0; k < 256; ++k) {
    cache.Insert(k, static_cast<int>(k));
    // Re-reference the hot key every step: second-chance eviction must
    // pass over it while cold fillers churn.
    auto hit = cache.Find(hot);
    ASSERT_NE(hit, nullptr) << "hot entry evicted after filler " << k;
    EXPECT_EQ(*hit, -1);
  }
}

TEST(ConcurrentCacheTest, InvalidateDropsEverything) {
  core::ConcurrentCache<int> cache(32);
  for (uint64_t k = 0; k < 20; ++k) cache.Insert(k, static_cast<int>(k));
  EXPECT_GT(cache.LiveEntries(), 0u);
  cache.Invalidate();
  EXPECT_EQ(cache.LiveEntries(), 0u);
  for (uint64_t k = 0; k < 20; ++k) EXPECT_EQ(cache.Find(k), nullptr);
  // The cache stays usable after invalidation.
  cache.Insert(3u, 33);
  auto hit = cache.Find(3u);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 33);
}

TEST(ConcurrentCacheTest, EraseKeepsOtherEntriesReachable) {
  // Single shard, capacity above the insert count: every entry stays
  // resident, so this exercises backward-shift deletion's probe repair.
  core::ConcurrentCache<int> cache(64, 1);
  for (uint64_t k = 0; k < 48; ++k) cache.Insert(k, static_cast<int>(k));
  for (uint64_t k = 0; k < 48; k += 2) cache.Erase(k);
  for (uint64_t k = 0; k < 48; ++k) {
    auto hit = cache.Find(k);
    if (k % 2 == 0) {
      EXPECT_EQ(hit, nullptr) << "erased key " << k << " still found";
    } else {
      ASSERT_NE(hit, nullptr) << "key " << k << " lost after erases";
      EXPECT_EQ(*hit, static_cast<int>(k));
    }
  }
}

TEST(ConcurrentCacheTest, GetOrComputeComputesOnceThenHits) {
  core::ConcurrentCache<int> cache(16);
  int computes = 0;
  for (int round = 0; round < 3; ++round) {
    auto value = cache.GetOrCompute(5u, [&] {
      ++computes;
      return 55;
    });
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, 55);
  }
  EXPECT_EQ(computes, 1);
}

TEST(ConcurrentCacheTest, ConcurrentInsertFindTortureIsCoherent) {
  // Self-validating values (value == f(key)): whatever interleaving the
  // pool produces, a Find may only ever observe the one correct value.
  // This is the suite's TSan target.
  core::ConcurrentCache<uint64_t> cache(512);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      core::Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t key = rng.NextU64(1024);
        switch (rng.NextU64(8)) {
          case 0:
            cache.Erase(key);
            break;
          case 1:
            if (auto hit = cache.Find(key)) {
              ASSERT_EQ(*hit, core::Mix64(key));
            }
            break;
          case 2:
            if (t == 0 && i % 4096 == 0) {
              cache.Invalidate();
            }
            break;
          default: {
            auto value =
                cache.GetOrCompute(key, [key] { return core::Mix64(key); });
            ASSERT_NE(value, nullptr);
            ASSERT_EQ(*value, core::Mix64(key));
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (uint64_t key = 0; key < 1024; ++key) {
    if (auto hit = cache.Find(key)) {
      EXPECT_EQ(*hit, core::Mix64(key));
    }
  }
}

// ---------------------------------------------------------------------------
// PairEncoder memo: parallel EncodeAll must be bitwise neutral.
// ---------------------------------------------------------------------------

data::GemDataset EncoderDataset() {
  return data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 42);
}

std::vector<data::PairExample> EncoderPool(const data::GemDataset& ds) {
  std::vector<data::PairExample> pool = ds.train;
  pool.insert(pool.end(), ds.valid.begin(), ds.valid.end());
  return pool;
}

TEST(PairEncoderCacheTest, EncodeAllPoolSizeInvariant) {
  const data::GemDataset ds = EncoderDataset();
  const std::vector<data::PairExample> pool = EncoderPool(ds);
  ASSERT_FALSE(pool.empty());
  std::vector<em::EncodedPair> baseline;
  {
    ScopedThreads scoped(1);
    em::PairEncoder encoder = em::MakePairEncoder(FixtureLM(), ds);
    baseline = encoder.EncodeAll(ds, pool);
  }
  for (int threads : {2, 3, 8}) {
    ScopedThreads scoped(threads);
    em::PairEncoder encoder = em::MakePairEncoder(FixtureLM(), ds);
    // Cold memo.
    EXPECT_TRUE(SameEncoded(encoder.EncodeAll(ds, pool), baseline))
        << "cold encode differs at " << threads << " threads";
    // Warm memo (every record hits).
    EXPECT_TRUE(SameEncoded(encoder.EncodeAll(ds, pool), baseline))
        << "warm encode differs at " << threads << " threads";
    EXPECT_GT(encoder.cache_stats().hits, 0u);
  }
}

TEST(PairEncoderCacheTest, TinyCapacityStillBitwiseCorrect) {
  const data::GemDataset ds = EncoderDataset();
  const std::vector<data::PairExample> pool = EncoderPool(ds);
  em::PairEncoder reference = em::MakePairEncoder(FixtureLM(), ds);
  const std::vector<em::EncodedPair> baseline =
      reference.EncodeAll(ds, pool);
  // Capacity 4 cannot hold even one chunk's records: constant eviction,
  // identical output.
  em::PairEncoder tiny(&FixtureLM().vocab(), reference.per_side_budget(), 4);
  tiny.FitSummarizer(ds);
  ScopedThreads scoped(4);
  EXPECT_TRUE(SameEncoded(tiny.EncodeAll(ds, pool), baseline));
  EXPECT_TRUE(SameEncoded(tiny.EncodeAll(ds, pool), baseline));
  EXPECT_GT(tiny.cache_stats().evictions, 0u);
}

TEST(PairEncoderCacheTest, IdentityTokenPreventsStaleServing) {
  const text::Vocab& vocab = FixtureLM().vocab();
  em::PairEncoder encoder(&vocab, 32);
  const data::PairExample pair{0, 0, 1};

  auto make_ds = [](const std::string& title) {
    data::GemDataset ds;
    ds.left_table.push_back(
        data::Record::Relational({{"title", data::Value::Str(title)}}));
    ds.right_table.push_back(
        data::Record::Relational({{"title", data::Value::Str("anchor")}}));
    return ds;
  };

  // Encode against a dataset, destroy it, then encode a different record
  // through a fresh (possibly same-address) dataset: the identity token
  // must keep the memo entries apart.
  em::EncodedPair first;
  {
    data::GemDataset ds1 = make_ds("alpha beta gamma");
    first = encoder.Encode(ds1, pair);
  }
  data::GemDataset ds2 = make_ds("delta epsilon");
  const em::EncodedPair second = encoder.Encode(ds2, pair);
  em::PairEncoder fresh(&vocab, 32);
  const em::EncodedPair expected = fresh.Encode(ds2, pair);
  EXPECT_EQ(second.left_ids, expected.left_ids);
  EXPECT_NE(second.left_ids, first.left_ids);

  // A copy shares identity (tables identical), so it hits the same
  // entries; after an in-place edit, RefreshCacheIdentity must stop the
  // stale encoding from being served.
  data::GemDataset ds3 = ds2;
  EXPECT_EQ(ds3.cache_identity, ds2.cache_identity);
  ds3.left_table[0] =
      data::Record::Relational({{"title", data::Value::Str("zeta eta")}});
  ds3.RefreshCacheIdentity();
  const em::EncodedPair edited = encoder.Encode(ds3, pair);
  em::PairEncoder fresh2(&vocab, 32);
  EXPECT_EQ(edited.left_ids, fresh2.Encode(ds3, pair).left_ids);

  // In-place mutation without a new identity: InvalidateRecord is the
  // targeted escape hatch (the incremental matcher's upsert path).
  ds3.left_table[0] =
      data::Record::Relational({{"title", data::Value::Str("theta iota")}});
  encoder.InvalidateRecord(ds3, /*left=*/true, 0);
  const em::EncodedPair mutated = encoder.Encode(ds3, pair);
  em::PairEncoder fresh3(&vocab, 32);
  EXPECT_EQ(mutated.left_ids, fresh3.Encode(ds3, pair).left_ids);
}

// ---------------------------------------------------------------------------
// Cached scoring/embedding sweeps: bitwise parity with the uncached twins.
// ---------------------------------------------------------------------------

std::vector<em::EncodedPair> ScoringFixture(const data::GemDataset& ds,
                                            size_t n) {
  em::PairEncoder encoder = em::MakePairEncoder(FixtureLM(), ds);
  std::vector<data::PairExample> pool = EncoderPool(ds);
  pool.resize(std::min(pool.size(), n));
  return encoder.EncodeAll(ds, pool);
}

TEST(CachedScoringTest, ScoreBatchCachedBitwiseParity) {
  const data::GemDataset ds = EncoderDataset();
  const std::vector<em::EncodedPair> xs = ScoringFixture(ds, 12);
  ASSERT_FALSE(xs.empty());
  core::Rng rng(5);
  em::FinetuneModel model(FixtureLM(), &rng);
  std::vector<em::ProbPair> baseline;
  {
    ScopedThreads scoped(1);
    baseline = em::ScoreBatch(&model, xs);
  }
  std::vector<uint64_t> keys(xs.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = core::Combine64(0xABCDu, i);
  }
  // Null cache / empty keys degrade to the uncached sweep.
  EXPECT_EQ(em::ScoreBatchCached(&model, xs, nullptr, keys), baseline);
  for (int threads : {1, 3}) {
    ScopedThreads scoped(threads);
    core::ConcurrentCache<em::ProbPair> cache(1u << 10);
    // Cold (all miss), warm (all hit), and partial (prefix pre-filled).
    EXPECT_EQ(em::ScoreBatchCached(&model, xs, &cache, keys), baseline)
        << "cold at " << threads << " threads";
    EXPECT_EQ(em::ScoreBatchCached(&model, xs, &cache, keys), baseline)
        << "warm at " << threads << " threads";
    EXPECT_EQ(cache.stats().hits, xs.size());
    core::ConcurrentCache<em::ProbPair> partial(1u << 10);
    const std::vector<em::EncodedPair> half(xs.begin(),
                                            xs.begin() + xs.size() / 2);
    const std::vector<uint64_t> half_keys(keys.begin(),
                                          keys.begin() + half.size());
    em::ScoreBatchCached(&model, half, &partial, half_keys);
    EXPECT_EQ(em::ScoreBatchCached(&model, xs, &partial, keys), baseline)
        << "partial at " << threads << " threads";
  }
  // Eviction-under-capacity: a 2-slot cache cannot hold the batch, and
  // must not change a single bit of the output.
  core::ConcurrentCache<em::ProbPair> tiny(2);
  EXPECT_EQ(em::ScoreBatchCached(&model, xs, &tiny, keys), baseline);
  EXPECT_EQ(em::ScoreBatchCached(&model, xs, &tiny, keys), baseline);
  EXPECT_GT(tiny.stats().evictions, 0u);
}

TEST(CachedScoringTest, EmbedBatchCachedBitwiseParity) {
  const data::GemDataset ds = EncoderDataset();
  const std::vector<em::EncodedPair> xs = ScoringFixture(ds, 10);
  ASSERT_FALSE(xs.empty());
  core::Rng rng(6);
  em::FinetuneModel probe(FixtureLM(), &rng);
  probe.Eval();
  const em::PairEmbedFn embed = [&probe](const em::EncodedPair& x,
                                         core::Rng* r) {
    tensor::Tensor e = probe.PairEmbedding(x, r);
    return std::vector<float>(e.data(), e.data() + e.numel());
  };
  std::vector<std::vector<float>> baseline;
  {
    ScopedThreads scoped(1);
    baseline = em::EmbedBatch(embed, xs);
  }
  const uint64_t tag = em::EmbeddingCache::ContextTag(
      data::DatasetFingerprint(ds), 0x77u);
  std::vector<uint64_t> keys(xs.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = em::EmbeddingCache::PairKey(tag, static_cast<int>(i), 0);
  }
  EXPECT_EQ(em::EmbedBatchCached(embed, xs, {}, nullptr, keys), baseline);
  for (int threads : {1, 3}) {
    ScopedThreads scoped(threads);
    em::EmbeddingCache cache(1u << 10);
    EXPECT_EQ(em::EmbedBatchCached(embed, xs, {}, &cache, keys), baseline)
        << "cold at " << threads << " threads";
    EXPECT_EQ(em::EmbedBatchCached(embed, xs, {}, &cache, keys), baseline)
        << "warm at " << threads << " threads";
    EXPECT_EQ(cache.stats().hits, xs.size());
  }
  em::EmbeddingCache tiny(2);
  EXPECT_EQ(em::EmbedBatchCached(embed, xs, {}, &tiny, keys), baseline);
  EXPECT_EQ(em::EmbedBatchCached(embed, xs, {}, &tiny, keys), baseline);
  EXPECT_GT(tiny.stats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// EmbeddingCache persistence (the corruption sweep lives in
// fault_injection_test.cc; this is the happy path).
// ---------------------------------------------------------------------------

TEST(EmbeddingCacheTest, SaveLoadRoundTripIsBitwise) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "cache_test_roundtrip.embcache")
          .string();
  fs::remove(path);
  em::EmbeddingCache cache(64);
  const uint64_t tag = em::EmbeddingCache::ContextTag(0x1111u, 0x2222u);
  core::Rng rng(9);
  std::vector<std::pair<uint64_t, std::vector<float>>> entries;
  for (int i = 0; i < 9; ++i) {
    std::vector<float> v(static_cast<size_t>(i));  // includes dim 0
    for (auto& f : v) f = rng.Gaussian();
    const uint64_t key = em::EmbeddingCache::PairKey(tag, i, i * 3 + 1);
    cache.Insert(key, v);
    entries.emplace_back(key, std::move(v));
  }
  ASSERT_TRUE(cache.Save(path).ok());
  em::EmbeddingCache loaded(64);
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.LiveEntries(), entries.size());
  for (const auto& [key, v] : entries) {
    auto hit = loaded.Find(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, v);  // float-exact
  }
  // Identical contents produce an identical byte image (sorted key order).
  const std::string path2 = path + ".again";
  ASSERT_TRUE(loaded.Save(path2).ok());
  std::ifstream a(path, std::ios::binary), b(path2, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  fs::remove(path);
  fs::remove(path2);
}

TEST(EmbeddingCacheTest, LoadMissingFileIsNotFound) {
  em::EmbeddingCache cache(16);
  core::Status st = cache.Load(
      (fs::path(::testing::TempDir()) / "no_such.embcache").string());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::StatusCode::kNotFound);
}

TEST(EmbeddingCacheTest, KeysAreRestartStableComposites) {
  // Same fingerprints -> same keys (what makes persistence useful);
  // any differing component -> different keys (what makes it safe).
  const uint64_t tag = em::EmbeddingCache::ContextTag(1u, 2u);
  EXPECT_EQ(tag, em::EmbeddingCache::ContextTag(1u, 2u));
  EXPECT_NE(tag, em::EmbeddingCache::ContextTag(2u, 1u));
  EXPECT_EQ(em::EmbeddingCache::PairKey(tag, 3, 4),
            em::EmbeddingCache::PairKey(tag, 3, 4));
  EXPECT_NE(em::EmbeddingCache::PairKey(tag, 3, 4),
            em::EmbeddingCache::PairKey(tag, 4, 3));
  EXPECT_NE(em::EmbeddingCache::PairKey(tag, 3, 4),
            em::EmbeddingCache::PairKey(
                em::EmbeddingCache::ContextTag(1u, 3u), 3, 4));
}

// ---------------------------------------------------------------------------
// IncrementalMatcher: delta re-match == full re-match, at O(delta) cost.
// ---------------------------------------------------------------------------

em::ChunkScoreFn HashStubScorer() {
  return [](const std::vector<data::PairExample>& chunk) {
    std::vector<em::ProbPair> probs(chunk.size());
    for (size_t i = 0; i < chunk.size(); ++i) {
      const uint64_t h =
          ((static_cast<uint64_t>(
                static_cast<uint32_t>(chunk[i].left_index))
            << 32) ^
           static_cast<uint32_t>(chunk[i].right_index)) *
          0x9E3779B97F4A7C15ULL;
      const float pos = static_cast<float>((h >> 40) & 0xFFFF) / 65535.0f;
      probs[i] = {1.0f - pos, pos};
    }
    return probs;
  };
}

data::GemDataset SyntheticDataset() {
  data::SyntheticTableOptions options;
  options.rows = 300;
  options.seed = 42;
  data::SyntheticTables tables = data::GenerateSyntheticTables(options);
  data::GemDataset ds;
  ds.left_table = std::move(tables.left);
  ds.right_table = std::move(tables.right);
  return ds;
}

std::unique_ptr<em::IncrementalMatcher> MakeMatcher(data::GemDataset ds) {
  const em::IncrementalMatcher::ScorerFactory scorer =
      [](const data::GemDataset&) { return HashStubScorer(); };
  em::IncrementalMatcher::BlockerFactory blocker =
      [](const data::GemDataset& d) {
        return std::unique_ptr<data::Blocker>(
            std::make_unique<data::MinHashBlocker>(d.left_table,
                                                   d.right_table));
      };
  return std::make_unique<em::IncrementalMatcher>(std::move(ds), scorer,
                                                  std::move(blocker));
}

bool SameResult(const em::MatchPipelineResult& a,
                const em::MatchPipelineResult& b) {
  if (a.candidates != b.candidates || a.matches != b.matches ||
      a.top_matches.size() != b.top_matches.size()) {
    return false;
  }
  for (size_t i = 0; i < a.top_matches.size(); ++i) {
    if (a.top_matches[i].left_index != b.top_matches[i].left_index ||
        a.top_matches[i].right_index != b.top_matches[i].right_index ||
        a.top_matches[i].pos_prob != b.top_matches[i].pos_prob) {
      return false;
    }
  }
  return true;
}

TEST(IncrementalMatcherTest, UpsertDeltaEqualsFullRematch) {
  data::GemDataset ds = SyntheticDataset();
  auto matcher = MakeMatcher(ds);  // copies ds
  matcher->FullMatch();

  // Replace three right records and one left record with other records'
  // content (a real edit), and append one new right record; mirror every
  // edit on the local copy.
  em::RecordDelta delta;
  for (int i : {5, 40, 111}) {
    em::RecordUpsert up;
    up.left = false;
    up.index = i;
    up.record = ds.right_table[static_cast<size_t>(i + 1)];
    ds.right_table[static_cast<size_t>(i)] = up.record;
    delta.upserts.push_back(std::move(up));
  }
  {
    em::RecordUpsert up;
    up.left = true;
    up.index = 17;
    up.record = ds.left_table[200];
    ds.left_table[17] = up.record;
    delta.upserts.push_back(std::move(up));
  }
  {
    em::RecordUpsert up;
    up.left = false;
    up.index = static_cast<int>(ds.right_table.size());
    up.record = ds.right_table[0];
    ds.right_table.push_back(up.record);
    delta.upserts.push_back(std::move(up));
  }

  const em::MatchPipelineResult incremental = matcher->ApplyDelta(delta);
  EXPECT_EQ(matcher->last_stats().changed_records, 5u);
  EXPECT_EQ(matcher->last_stats().reused + matcher->last_stats().rescored,
            matcher->last_stats().candidates);
  // The point of the exercise: almost everything was served from cache.
  EXPECT_LT(matcher->last_stats().rescored,
            matcher->last_stats().candidates / 4);
  EXPECT_GT(matcher->last_stats().reused, 0u);

  // A from-scratch matcher over the mutated tables must agree exactly.
  auto fresh = MakeMatcher(std::move(ds));
  const em::MatchPipelineResult full = fresh->FullMatch();
  EXPECT_TRUE(SameResult(incremental, full));
}

TEST(IncrementalMatcherTest, SameContentUpsertRescoresExactlyTouchedPairs) {
  auto matcher = MakeMatcher(SyntheticDataset());
  const em::MatchPipelineResult before = matcher->FullMatch();
  const size_t full_candidates = matcher->last_stats().candidates;
  ASSERT_GT(full_candidates, 0u);

  // Upsert one right record with its own unchanged content: the blocker
  // stream is identical, so the re-match must re-score exactly the
  // candidates touching that record — its version changed — and reuse
  // every other score.
  const int target = 123;
  em::RecordDelta delta;
  em::RecordUpsert up;
  up.left = false;
  up.index = target;
  up.record = matcher->dataset().right_table[static_cast<size_t>(target)];
  delta.upserts.push_back(std::move(up));
  const em::MatchPipelineResult after = matcher->ApplyDelta(delta);

  EXPECT_TRUE(SameResult(after, before));
  const em::DeltaStats& stats = matcher->last_stats();
  EXPECT_EQ(stats.candidates, full_candidates);
  EXPECT_EQ(stats.reused + stats.rescored, stats.candidates);
  // O(delta · candidates-per-record): count the touched candidates with a
  // second identical delta and an observer.
  size_t touched = 0;
  em::RecordDelta again;
  again.upserts.push_back(
      {false, target,
       matcher->dataset().right_table[static_cast<size_t>(target)]});
  // Rebuild with an observing pipeline config to count pairs on target.
  // (The observer is wired through Config, so use a dedicated matcher.)
  data::GemDataset counting_ds = SyntheticDataset();
  em::IncrementalMatcher::Config config;
  config.pipeline.on_scored = [&touched, target](const data::PairExample& p,
                                                 em::ProbPair) {
    if (p.right_index == target) ++touched;
  };
  const em::IncrementalMatcher::ScorerFactory scorer =
      [](const data::GemDataset&) { return HashStubScorer(); };
  em::IncrementalMatcher counting(
      std::move(counting_ds), scorer,
      [](const data::GemDataset& d) {
        return std::unique_ptr<data::Blocker>(
            std::make_unique<data::MinHashBlocker>(d.left_table,
                                                   d.right_table));
      },
      config);
  counting.FullMatch();
  touched = 0;
  counting.ApplyDelta(again);
  EXPECT_EQ(counting.last_stats().rescored, touched);
  EXPECT_LT(counting.last_stats().rescored, full_candidates / 10);
}

// ---------------------------------------------------------------------------
// EmbeddingCache over the storage-backed hash index (DESIGN.md §15): the
// mmap backend is a pure backing-store swap — values served in place from
// the mapping are bitwise the values the flat-file path serves from RAM.
// ---------------------------------------------------------------------------

TEST(EmbeddingCacheTest, MmapBackendServesBitwiseEqualValues) {
  const std::string ram_path =
      (fs::path(::testing::TempDir()) / "cache_parity.embcache").string();
  const std::string mmap_path =
      (fs::path(::testing::TempDir()) / "cache_parity.phx").string();
  fs::remove(ram_path);
  fs::remove(mmap_path);

  const uint64_t tag = em::EmbeddingCache::ContextTag(0xAAu, 0xBBu);
  core::Rng rng(11);
  std::vector<std::pair<uint64_t, std::vector<float>>> entries;
  for (int i = 0; i < 23; ++i) {
    std::vector<float> v(static_cast<size_t>(1 + i % 7));
    for (auto& f : v) f = rng.Gaussian();
    entries.emplace_back(em::EmbeddingCache::PairKey(tag, i, i + 1),
                         std::move(v));
  }

  // Writer processes, one per backend.
  {
    em::EmbeddingCache ram(64);
    ASSERT_EQ(ram.Attach(ram_path, em::EmbeddingCache::CacheBackend::kRam)
                  .code(),
              core::StatusCode::kNotFound);
    em::EmbeddingCache mm(64);
    ASSERT_EQ(mm.Attach(mmap_path, em::EmbeddingCache::CacheBackend::kMmap)
                  .code(),
              core::StatusCode::kNotFound);  // cold start, binding live
    for (const auto& [key, v] : entries) {
      ram.Insert(key, v);
      mm.Insert(key, v);
    }
    ASSERT_TRUE(ram.Save(ram_path).ok());
    ASSERT_TRUE(mm.Save(mmap_path).ok());
  }

  // Reader processes: the mmap cache starts with an EMPTY overlay (no
  // load) and faults values in straight from the mapping.
  em::EmbeddingCache ram(64);
  ASSERT_TRUE(
      ram.Attach(ram_path, em::EmbeddingCache::CacheBackend::kRam).ok());
  em::EmbeddingCache mm(64);
  ASSERT_TRUE(
      mm.Attach(mmap_path, em::EmbeddingCache::CacheBackend::kMmap).ok());
  EXPECT_EQ(mm.PersistedEntries(), entries.size());
  for (const auto& [key, v] : entries) {
    auto from_ram = ram.Find(key);
    auto from_map = mm.Find(key);
    ASSERT_NE(from_ram, nullptr);
    ASSERT_NE(from_map, nullptr);
    EXPECT_EQ(*from_ram, v);
    EXPECT_EQ(*from_map, v);  // float-exact through the mapping
  }
  // Absent keys miss in both.
  EXPECT_EQ(mm.Find(em::EmbeddingCache::PairKey(tag, 999, 1000)), nullptr);
  fs::remove(ram_path);
  fs::remove(mmap_path);
}

TEST(EmbeddingCacheTest, LegacyFlatFileMigratesToIndexOnFlush) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "cache_migrate.embcache").string();
  fs::remove(path);
  const uint64_t tag = em::EmbeddingCache::ContextTag(0x33u, 0x44u);
  std::vector<std::pair<uint64_t, std::vector<float>>> entries;
  for (int i = 0; i < 7; ++i) {
    entries.emplace_back(em::EmbeddingCache::PairKey(tag, i, i),
                         std::vector<float>(3, 0.5f * i));
  }
  {
    em::EmbeddingCache legacy(64);
    for (const auto& [key, v] : entries) legacy.Insert(key, v);
    ASSERT_TRUE(legacy.Save(path).ok());  // "PEMEMBC1" flat file
  }
  // Attaching the legacy file in mmap mode loads it once into the
  // overlay; the next flush rewrites the path in the index format.
  em::EmbeddingCache cache(64);
  ASSERT_TRUE(
      cache.Attach(path, em::EmbeddingCache::CacheBackend::kMmap).ok());
  EXPECT_EQ(cache.LiveEntries(), entries.size());
  EXPECT_EQ(cache.PersistedEntries(), 0u) << "not an index file yet";
  ASSERT_TRUE(cache.Save(path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    char magic[8] = {0};
    in.read(magic, sizeof(magic));
    EXPECT_EQ(std::string(magic, 8), "PEMHIDX1") << "flush did not migrate";
  }
  // A restarted process reads every migrated value in place.
  em::EmbeddingCache restarted(64);
  ASSERT_TRUE(
      restarted.Attach(path, em::EmbeddingCache::CacheBackend::kMmap).ok());
  EXPECT_EQ(restarted.PersistedEntries(), entries.size());
  for (const auto& [key, v] : entries) {
    auto hit = restarted.Find(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, v);
  }
  fs::remove(path);
}

TEST(IncrementalMatcherTest, PersistentStoreWarmStartsAFreshMatcher) {
  // The serving seam: a persistent cache shared across matcher lifetimes
  // (standing in for daemon restarts) must let the second matcher serve
  // every version-0 pair from the store — zero re-scoring — with results
  // bitwise equal to computing from scratch.
  const std::string path =
      (fs::path(::testing::TempDir()) / "warm_start.phx").string();
  fs::remove(path);
  const uint64_t tag = em::EmbeddingCache::ContextTag(0x55u, 0x66u);
  const em::IncrementalMatcher::ScorerFactory scorer =
      [](const data::GemDataset&) { return HashStubScorer(); };
  const em::IncrementalMatcher::BlockerFactory blocker =
      [](const data::GemDataset& d) {
        return std::unique_ptr<data::Blocker>(
            std::make_unique<data::MinHashBlocker>(d.left_table,
                                                   d.right_table));
      };

  em::MatchPipelineResult first_result;
  size_t full_candidates = 0;
  {
    auto persistent = std::make_shared<em::EmbeddingCache>(1u << 14);
    ASSERT_EQ(persistent
                  ->Attach(path, em::EmbeddingCache::CacheBackend::kMmap)
                  .code(),
              core::StatusCode::kNotFound);
    em::IncrementalMatcher::Config config;
    config.persistent = persistent;
    config.persistent_tag = tag;
    em::IncrementalMatcher first(SyntheticDataset(), scorer, blocker,
                                 config);
    first_result = first.FullMatch();
    full_candidates = first.last_stats().candidates;
    ASSERT_GT(full_candidates, 0u);
    EXPECT_EQ(first.last_stats().rescored, full_candidates);
    ASSERT_TRUE(persistent->Save(path).ok());  // "process" exits
  }

  // Fresh matcher, fresh cache object, same store: warm start.
  auto persistent = std::make_shared<em::EmbeddingCache>(1u << 14);
  ASSERT_TRUE(
      persistent->Attach(path, em::EmbeddingCache::CacheBackend::kMmap)
          .ok());
  EXPECT_EQ(persistent->PersistedEntries(), full_candidates);
  em::IncrementalMatcher::Config config;
  config.persistent = persistent;
  config.persistent_tag = tag;
  em::IncrementalMatcher second(SyntheticDataset(), scorer, blocker,
                                config);
  const em::MatchPipelineResult warm = second.FullMatch();
  EXPECT_EQ(second.last_stats().candidates, full_candidates);
  EXPECT_EQ(second.last_stats().rescored, 0u) << "warm start re-scored";
  EXPECT_EQ(second.last_stats().reused, full_candidates);
  EXPECT_TRUE(SameResult(warm, first_result));

  // Touched records drop out of the persistent key space: an upsert must
  // re-score exactly its own candidates even with the store attached.
  em::RecordDelta delta;
  delta.upserts.push_back(
      {false, 9, second.dataset().right_table[10]});
  second.ApplyDelta(delta);
  EXPECT_GT(second.last_stats().rescored, 0u);
  EXPECT_LT(second.last_stats().rescored, full_candidates / 4);
  fs::remove(path);
}

TEST(IncrementalMatcherTest, DeleteThenReviveRestoresOriginalResult) {
  auto matcher = MakeMatcher(SyntheticDataset());
  const em::MatchPipelineResult original = matcher->FullMatch();
  const int victim = 77;
  const data::Record saved =
      matcher->dataset().right_table[static_cast<size_t>(victim)];

  em::RecordDelta del;
  del.deletes.push_back({false, victim});
  const em::MatchPipelineResult without = matcher->ApplyDelta(del);
  // The tombstoned record must be gone from the candidate stream.
  for (const auto& m : without.top_matches) {
    EXPECT_NE(m.right_index, victim);
  }
  EXPECT_LE(without.candidates, original.candidates);

  // Reviving it with the original content restores the original result
  // bitwise (the scorer is deterministic; only versions changed).
  em::RecordDelta revive;
  revive.upserts.push_back({false, victim, saved});
  const em::MatchPipelineResult restored = matcher->ApplyDelta(revive);
  EXPECT_TRUE(SameResult(restored, original));
}

}  // namespace
}  // namespace promptem
