// Regenerates Figure 4 (and the §5.5 template study): F1 of the four
// template variants — continuous vs hard-encoding, T1 vs T2 — using the
// prompt model alone (no self-training, isolating the template choice).

#include <vector>

#include "bench_util.h"
#include "promptem/promptem.h"

int main() {
  using namespace promptem;
  const auto& lm = bench::SharedLM();
  const bool fast = bench::FastMode();

  bench::PrintHeader(
      "Figure 4: Effect of template choices (F1 %)",
      "T1/T2 continuous vs T1*/T2* hard-encoding; prompt model only.");

  struct Variant {
    const char* name;
    em::TemplateType type;
    em::TemplateMode mode;
  };
  const std::vector<Variant> variants = {
      {"T1 (continuous)", em::TemplateType::kT1,
       em::TemplateMode::kContinuous},
      {"T1* (hard)", em::TemplateType::kT1, em::TemplateMode::kHard},
      {"T2 (continuous)", em::TemplateType::kT2,
       em::TemplateMode::kContinuous},
      {"T2* (hard)", em::TemplateType::kT2, em::TemplateMode::kHard},
  };

  std::vector<std::string> header = {"Template"};
  std::vector<data::GemDataset> datasets;
  for (auto kind : data::AllBenchmarks()) {
    datasets.push_back(data::GenerateBenchmark(kind, bench::kSeed));
    header.push_back(data::GetBenchmarkInfo(kind).abbrev);
  }
  header.push_back("Avg");
  core::TablePrinter table(header);

  for (const Variant& variant : variants) {
    std::vector<std::string> row = {variant.name};
    double total = 0.0;
    for (auto& ds : datasets) {
      data::LowResourceSplit split = bench::DefaultSplit(ds);
      em::PairEncoder encoder = em::MakePairEncoder(lm, ds);
      auto labeled = encoder.EncodeAll(ds, split.labeled);
      auto valid = encoder.EncodeAll(ds, split.valid);
      auto test = encoder.EncodeAll(ds, split.test);

      em::PromptModelConfig config;
      config.template_type = variant.type;
      config.template_mode = variant.mode;
      core::Rng rng(bench::kSeed);
      em::PromptModel model(lm, config, &rng);
      em::TrainOptions options;
      options.epochs = fast ? 2 : 8;
      em::TrainClassifier(&model, labeled, valid, options);
      const double f1 = em::Evaluate(&model, test).F1();
      total += f1;
      row.push_back(core::StrFormat("%.1f", f1 * 100));
    }
    row.push_back(core::StrFormat("%.1f", total / datasets.size() * 100));
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[fig4] %s done\n", variant.name);
  }
  table.Print();
  return 0;
}
