#ifndef PROMPTEM_BENCH_BENCH_UTIL_H_
#define PROMPTEM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "baselines/common.h"
#include "core/string_util.h"
#include "core/table_printer.h"
#include "core/timer.h"
#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"

namespace promptem::bench {

/// Seed shared by the whole harness so every table is reproducible.
inline constexpr uint64_t kSeed = 42;

/// True when PROMPTEM_BENCH_FAST=1: shrink epochs for smoke runs.
inline bool FastMode() {
  const char* env = std::getenv("PROMPTEM_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

/// The shared pre-trained LM, cached on disk in the working directory
/// (first call pre-trains; later binaries load instantly).
inline const lm::PretrainedLM& SharedLM() {
  static const lm::PretrainedLM* kLm =
      lm::GetOrCreateSharedLM("promptem_shared_lm", kSeed).release();
  return *kLm;
}

/// Harness-wide training options (scaled-down stand-ins for the paper's
/// 20 teacher / 30 student epochs).
inline baselines::RunOptions DefaultRunOptions() {
  baselines::RunOptions options;
  options.seed = kSeed;
  if (FastMode()) {
    options.epochs = 2;
    options.student_epochs = 2;
    options.mc_passes = 3;
  }
  return options;
}

/// Prints the standard bench header naming the experiment.
inline void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("==============================================================\n");
}

/// Default low-resource split for a dataset (Table 1 rates).
inline data::LowResourceSplit DefaultSplit(const data::GemDataset& dataset) {
  core::Rng rng(kSeed);
  return data::MakeLowResourceSplit(dataset, dataset.default_rate, &rng);
}

}  // namespace promptem::bench

#endif  // PROMPTEM_BENCH_BENCH_UTIL_H_
