// Regenerates Figure 6 / Appendix C: error analysis on SEMI-HETER.
// Trains PromptEM, collects false positives and false negatives on the
// test pairs, and shows that errors concentrate on pairs whose only
// distinguishing signal is digit attributes (ISBN, dates, pages, price) —
// which the LM tokenizer fragments into single digits.

#include "bench_util.h"
#include <set>

#include "data/serializer.h"
#include "promptem/promptem.h"

namespace {

double DigitJaccard(const std::string& a, const std::string& b) {
  // Whole-digit-run overlap between the two serializations.
  auto runs = [](const std::string& s) {
    std::set<std::string> out;
    std::string cur;
    for (char c : s) {
      if (std::isdigit(static_cast<unsigned char>(c))) {
        cur.push_back(c);
      } else if (!cur.empty()) {
        if (cur.size() > 2) out.insert(cur);
        cur.clear();
      }
    }
    if (cur.size() > 2) out.insert(cur);
    return out;
  };
  auto ra = runs(a);
  auto rb = runs(b);
  if (ra.empty() && rb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& r : ra) inter += rb.count(r);
  const size_t uni = ra.size() + rb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

}  // namespace

int main() {
  using namespace promptem;
  const auto& lm = bench::SharedLM();
  baselines::RunOptions options = bench::DefaultRunOptions();

  bench::PrintHeader(
      "Figure 6 / Appendix C: Error analysis on SEMI-HETER",
      "Errors cluster on pairs whose words agree and only digits differ "
      "(the LM fragments digits; see Appendix C of the paper).");

  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHeter, bench::kSeed);
  data::LowResourceSplit split = bench::DefaultSplit(ds);

  em::PromptEM promptem(
      &lm, baselines::MakePromptEmConfig(baselines::Method::kPromptEM,
                                         options));
  em::PromptEMResult result = promptem.Run(ds, split);
  std::printf("PromptEM on SEMI-HETER test: %s\n\n",
              result.test.ToString().c_str());

  em::PairEncoder encoder = em::MakePairEncoder(lm, ds);
  auto test = encoder.EncodeAll(ds, split.test);
  auto preds = em::PredictLabels(promptem.last_model(), test);

  int shown = 0;
  double err_digit_jacc = 0.0, ok_digit_jacc = 0.0;
  int err_n = 0, ok_n = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const auto& pair = split.test[i];
    const std::string left = data::SerializeRecord(ds.Left(pair));
    const std::string right = data::SerializeRecord(ds.Right(pair));
    const double dj = DigitJaccard(left, right);
    const bool wrong = preds[i] != pair.label;
    (wrong ? err_digit_jacc : ok_digit_jacc) += dj;
    (wrong ? err_n : ok_n) += 1;
    if (wrong && shown < 2) {
      ++shown;
      std::printf("%s (word overlap %.2f, digit overlap %.2f)\n",
                  pair.label == 1 ? "FALSE NEGATIVE" : "FALSE POSITIVE",
                  core::TokenJaccard(left, right), dj);
      std::printf("  left:  %.160s\n", left.c_str());
      std::printf("  right: %.160s\n\n", right.c_str());
    }
  }
  if (err_n > 0 && ok_n > 0) {
    std::printf("mean digit-run overlap: errors %.2f vs correct %.2f "
                "(%d errors / %d correct)\n",
                err_digit_jacc / err_n, ok_digit_jacc / ok_n, err_n, ok_n);
    std::printf(
        "-> errors have systematically less usable digit signal, matching "
        "the paper's conclusion that LMs miss digit-only distinctions.\n");
  }
  return 0;
}
