// Micro-benchmarks (google-benchmark) for the hot primitives underneath
// every experiment: GEMM (single-thread and pool sweep), softmax,
// layer-norm, the tokenizer, the §2.2 serializer, one transformer forward
// pass, and one TDmatch PPR sweep. Unless --benchmark_out is given, the
// results are also written to BENCH_micro.json (kernel -> ns/op, items/s).

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/tdmatch.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/benchmarks.h"
#include "data/blocking.h"
#include "data/serializer.h"
#include "data/synthetic.h"
#include "nn/serialize.h"
#include "nn/transformer.h"
#include "pipeline/incremental.h"
#include "pipeline/match_pipeline.h"
#include "core/signals.h"
#include "lm/pretrained_lm.h"
#include "promptem/embed_cache.h"
#include "promptem/encoding.h"
#include "promptem/scoring.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "train/registry.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

// Build-type stamp injected by bench/CMakeLists.txt; reported via
// AddCustomContext and used to refuse recording BENCH_micro.json from a
// non-Release or sanitizer build (the system libbenchmark's own
// library_build_type field always says "debug" and cannot be trusted).
#ifndef PROMPTEM_BENCH_BUILD_TYPE
#define PROMPTEM_BENCH_BUILD_TYPE ""
#endif
#ifndef PROMPTEM_BENCH_SANITIZE
#define PROMPTEM_BENCH_SANITIZE ""
#endif

namespace {

using namespace promptem;

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> a(static_cast<size_t>(n) * n, 1.0f);
  std::vector<float> b(static_cast<size_t>(n) * n, 2.0f);
  std::vector<float> c(static_cast<size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    tensor::kernels::Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(),
                          0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

/// The same GEMM pinned to the portable scalar kernels — the "before"
/// half of the before/after pair BENCH_micro.json records (the dispatch
/// default is the AVX2 table wherever the CPU has it).
void BM_GemmScalar(benchmark::State& state) {
  tensor::kernels::ScopedKernelVariant scalar(
      tensor::kernels::KernelVariant::kScalar);
  const int n = static_cast<int>(state.range(0));
  std::vector<float> a(static_cast<size_t>(n) * n, 1.0f);
  std::vector<float> b(static_cast<size_t>(n) * n, 2.0f);
  std::vector<float> c(static_cast<size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    tensor::kernels::Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(),
                          0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmScalar)->Arg(128)->Arg(256);

/// Int8 dynamic-quantization GEMM (u7 activations x s8 weights, int32
/// accumulators) over the NT shape Linear runs, active-variant and
/// scalar-pinned twins.
void GemmInt8Body(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Rng rng(7);
  std::vector<uint8_t> a(static_cast<size_t>(n) * n);
  std::vector<int8_t> b(static_cast<size_t>(n) * n);
  for (auto& v : a) v = static_cast<uint8_t>(rng.NextU64(128));
  for (auto& v : b) {
    v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  }
  std::vector<int32_t> c(static_cast<size_t>(n) * n);
  for (auto _ : state) {
    tensor::kernels::GemmInt8NT(n, n, n, a.data(), n, b.data(), n, c.data(),
                                n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}

void BM_GemmInt8(benchmark::State& state) { GemmInt8Body(state); }
BENCHMARK(BM_GemmInt8)->Arg(128)->Arg(256);

void BM_GemmInt8Scalar(benchmark::State& state) {
  tensor::kernels::ScopedKernelVariant scalar(
      tensor::kernels::KernelVariant::kScalar);
  GemmInt8Body(state);
}
BENCHMARK(BM_GemmInt8Scalar)->Arg(256);

/// Same GEMM across pool sizes: Args({n, threads}). Sizes above the
/// parallel threshold shard rows across the pool; the result is bitwise
/// identical at every pool size.
void BM_GemmPool(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const int saved = core::GetNumThreads();
  core::SetNumThreads(threads);
  std::vector<float> a(static_cast<size_t>(n) * n, 1.0f);
  std::vector<float> b(static_cast<size_t>(n) * n, 2.0f);
  std::vector<float> c(static_cast<size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    tensor::kernels::Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(),
                          0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
  state.counters["threads"] = threads;
  core::SetNumThreads(saved);
}
BENCHMARK(BM_GemmPool)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

void BM_GemmTransB(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> a(static_cast<size_t>(n) * n, 1.0f);
  std::vector<float> b(static_cast<size_t>(n) * n, 2.0f);
  std::vector<float> c(static_cast<size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    tensor::kernels::Gemm(false, true, n, n, n, 1.0f, a.data(), b.data(),
                          0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmTransB)->Arg(64);

void BM_SoftmaxRows(benchmark::State& state) {
  const int rows = 64;
  const int cols = static_cast<int>(state.range(0));
  std::vector<float> x(static_cast<size_t>(rows) * cols, 0.5f);
  std::vector<float> y(x.size());
  for (auto _ : state) {
    tensor::kernels::SoftmaxRows(x.data(), rows, cols, y.data());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(2048);

void BM_LayerNorm(benchmark::State& state) {
  const int rows = 96;
  const int cols = 32;
  std::vector<float> x(static_cast<size_t>(rows) * cols, 0.5f);
  std::vector<float> gamma(cols, 1.0f);
  std::vector<float> beta(cols, 0.0f);
  std::vector<float> out(x.size());
  std::vector<float> mean(rows);
  std::vector<float> rstd(rows);
  for (auto _ : state) {
    tensor::kernels::LayerNormForward(x.data(), rows, cols, gamma.data(),
                                      beta.data(), 1e-5f, out.data(),
                                      mean.data(), rstd.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LayerNorm);

void BM_Tokenize(benchmark::State& state) {
  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 42);
  const std::string text = data::SerializeRecord(ds.left_table[0]);
  for (auto _ : state) {
    auto tokens = text::WordTokenize(text);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_Tokenize);

void BM_SerializeRecord(benchmark::State& state) {
  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiRel, 42);
  for (auto _ : state) {
    std::string s = data::SerializeRecord(ds.left_table[0]);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SerializeRecord);

void BM_TransformerForward(benchmark::State& state) {
  nn::TransformerConfig config;
  config.vocab_size = 2000;
  config.max_seq_len = 96;
  config.dim = 32;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_dim = 64;
  config.dropout = 0.0f;
  core::Rng rng(1);
  nn::TransformerEncoder encoder(config, &rng);
  encoder.SetTraining(false);
  std::vector<int> ids(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = 7 + static_cast<int>(i % 1900);
  }
  for (auto _ : state) {
    auto h = encoder.Encode(ids, &rng);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_TransformerForward)->Arg(32)->Arg(96);

nn::TransformerConfig ForwardBenchConfig() {
  nn::TransformerConfig config;
  config.vocab_size = 2000;
  config.max_seq_len = 96;
  config.dim = 32;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_dim = 64;
  config.dropout = 0.0f;
  return config;
}

std::vector<int> ForwardBenchIds(int len) {
  std::vector<int> ids(static_cast<size_t>(len));
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = 7 + static_cast<int>(i % 1900);
  }
  return ids;
}

/// Training-mode forward: grad mode on, so every op attaches parents and
/// a backward closure (the graph is built, then discarded each iteration).
void BM_ForwardTrain(benchmark::State& state) {
  core::Rng rng(1);
  nn::TransformerEncoder encoder(ForwardBenchConfig(), &rng);
  encoder.Train();
  const std::vector<int> ids =
      ForwardBenchIds(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto h = encoder.Encode(ids, &rng);
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardTrain)->Arg(96);

/// Inference-mode forward through the execution engine's fast path:
/// NoGradGuard (no graph) + a warmed ScratchArena (steady-state buffer
/// reuse). The headline eval-vs-train comparison for BENCH_micro.json.
void BM_ForwardEval(benchmark::State& state) {
  core::Rng rng(1);
  nn::TransformerEncoder encoder(ForwardBenchConfig(), &rng);
  encoder.Eval();
  const std::vector<int> ids =
      ForwardBenchIds(static_cast<int>(state.range(0)));
  tensor::NoGradGuard no_grad;
  tensor::ScratchArena arena;
  tensor::ScratchArena::Scope scope(&arena);
  for (auto _ : state) {
    auto h = encoder.Encode(ids, &rng);
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["arena_fresh"] = static_cast<double>(arena.fresh_count());
}
BENCHMARK(BM_ForwardEval)->Arg(96);

tensor::Tensor RandomAttnInput(int t, int d, uint64_t seed) {
  core::Rng rng(seed);
  tensor::Tensor x = tensor::Tensor::Zeros({t, d});
  for (int64_t i = 0; i < x.numel(); ++i) x.data()[i] = rng.Gaussian();
  return x;
}

/// Fused SDPA core (strided head views + streaming softmax + tiled
/// attn-times-V), graph-free with a warmed arena: the configuration every
/// eval scoring pass runs. 4 heads over packed [T, 64] Q/K/V.
void BM_AttentionFused(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int d = 64;
  const int heads = 4;
  const float scale = 1.0f / 4.0f;  // 1/sqrt(head_dim=16)
  tensor::Tensor q = RandomAttnInput(t, d, 1);
  tensor::Tensor k = RandomAttnInput(t, d, 2);
  tensor::Tensor v = RandomAttnInput(t, d, 3);
  tensor::NoGradGuard no_grad;
  tensor::ScratchArena arena;
  tensor::ScratchArena::Scope scope(&arena);
  for (auto _ : state) {
    tensor::Tensor out =
        tensor::ops::FusedSdpa(q, k, v, heads, scale, 0.0f, nullptr);
    benchmark::DoNotOptimize(out.data());
  }
  // Two [T,T]x[T,hd]-shaped GEMMs per head: 4*T*T*d flops total.
  state.SetItemsProcessed(state.iterations() * 4LL * t * t * d);
  state.counters["arena_fresh"] = static_cast<double>(arena.fresh_count());
}
BENCHMARK(BM_AttentionFused)->Arg(32)->Arg(128);

/// BM_AttentionFused pinned to the scalar kernels (the strided GEMM and
/// the streaming-softmax exp both dispatch per variant).
void BM_AttentionFusedScalar(benchmark::State& state) {
  tensor::kernels::ScopedKernelVariant scalar(
      tensor::kernels::KernelVariant::kScalar);
  const int t = static_cast<int>(state.range(0));
  const int d = 64;
  const int heads = 4;
  const float scale = 1.0f / 4.0f;
  tensor::Tensor q = RandomAttnInput(t, d, 1);
  tensor::Tensor k = RandomAttnInput(t, d, 2);
  tensor::Tensor v = RandomAttnInput(t, d, 3);
  tensor::NoGradGuard no_grad;
  tensor::ScratchArena arena;
  tensor::ScratchArena::Scope scope(&arena);
  for (auto _ : state) {
    tensor::Tensor out =
        tensor::ops::FusedSdpa(q, k, v, heads, scale, 0.0f, nullptr);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4LL * t * t * d);
}
BENCHMARK(BM_AttentionFusedScalar)->Arg(128);

/// The unfused parity reference over the same inputs: per-head SelectCols
/// copies, materialized score matrices, and a ConcatCols gather — what
/// MultiHeadSelfAttention ran before fusion (PROMPTEM_UNFUSED_ATTENTION=1).
void BM_AttentionUnfused(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int d = 64;
  const int heads = 4;
  const int hd = d / heads;
  const float scale = 1.0f / 4.0f;
  tensor::Tensor q = RandomAttnInput(t, d, 1);
  tensor::Tensor k = RandomAttnInput(t, d, 2);
  tensor::Tensor v = RandomAttnInput(t, d, 3);
  tensor::NoGradGuard no_grad;
  tensor::ScratchArena arena;
  tensor::ScratchArena::Scope scope(&arena);
  for (auto _ : state) {
    std::vector<tensor::Tensor> head_outputs;
    head_outputs.reserve(heads);
    for (int h = 0; h < heads; ++h) {
      std::vector<int> cols(hd);
      for (int c = 0; c < hd; ++c) cols[c] = h * hd + c;
      tensor::Tensor qh = tensor::ops::SelectCols(q, cols);
      tensor::Tensor kh = tensor::ops::SelectCols(k, cols);
      tensor::Tensor vh = tensor::ops::SelectCols(v, cols);
      tensor::Tensor attn = tensor::ops::Softmax(tensor::ops::Scale(
          tensor::ops::MatMul(qh, kh, false, /*trans_b=*/true), scale));
      head_outputs.push_back(tensor::ops::MatMul(attn, vh));
    }
    tensor::Tensor out = tensor::ops::ConcatCols(head_outputs);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4LL * t * t * d);
  state.counters["arena_fresh"] = static_cast<double>(arena.fresh_count());
}
BENCHMARK(BM_AttentionUnfused)->Arg(32)->Arg(128);

/// End-to-end streaming match over the seeded synthetic workload:
/// MinHash-LSH blocking -> chunked scoring -> incremental metrics, at
/// 10k / 100k / 1M left rows. Scoring is a cheap deterministic hash stub
/// — real-model chunk scoring is pinned bitwise by tests/pipeline_test.cc;
/// what this measures is the blocker + pipeline machinery, and what the
/// counters record is the sub-quadratic candidate count against the
/// all-pairs cross product, plus the gold pair completeness.
void BM_BlockScoreMatch(benchmark::State& state) {
  const auto rows = static_cast<size_t>(state.range(0));
  data::SyntheticTableOptions options;
  options.rows = rows;
  options.seed = 42;
  const data::SyntheticTables tables = data::GenerateSyntheticTables(options);
  const em::ChunkScoreFn scorer =
      [](const std::vector<data::PairExample>& chunk) {
        std::vector<em::ProbPair> probs(chunk.size());
        for (size_t i = 0; i < chunk.size(); ++i) {
          const uint64_t h =
              ((static_cast<uint64_t>(static_cast<uint32_t>(
                    chunk[i].left_index))
                << 32) ^
               static_cast<uint32_t>(chunk[i].right_index)) *
              0x9E3779B97F4A7C15ULL;
          const float pos = static_cast<float>((h >> 40) & 0xFFFF) / 65535.0f;
          probs[i] = {1.0f - pos, pos};
        }
        return probs;
      };
  em::MatchPipelineResult result;
  for (auto _ : state) {
    data::MinHashBlocker blocker(tables.left, tables.right);
    em::MatchPipelineConfig config;
    config.chunk_size = 8192;
    config.gold_label = [&tables](int l, int r) {
      return tables.GoldLabel(l, r);
    };
    em::MatchPipeline pipeline(&blocker, scorer, config);
    result = pipeline.Run();
    benchmark::DoNotOptimize(result.candidates);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(result.candidates));
  state.counters["candidates"] = static_cast<double>(result.candidates);
  state.counters["allpairs"] = static_cast<double>(tables.left.size()) *
                               static_cast<double>(tables.right.size());
  // Gold matches retained by the blocker (scored either way) over all
  // gold matches — every left row has exactly one.
  state.counters["completeness"] =
      static_cast<double>(result.metrics.tp + result.metrics.fn) /
      static_cast<double>(rows);
  state.counters["matches"] = static_cast<double>(result.matches);
}
BENCHMARK(BM_BlockScoreMatch)
    ->Unit(benchmark::kMillisecond)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

/// The same streaming match with the MinHash band tables on disk
/// (mmap-backed core::HashIndex files): the candidate stream is pinned
/// bitwise identical to the in-RAM backend by tests/hash_index_test.cc,
/// so the delta against BM_BlockScoreMatch is the pure cost of taking
/// the index through the storage seam — build-time sealing to files plus
/// page-cache reads instead of heap reads on every probe.
void BM_BlockScoreMatch_Mmap(benchmark::State& state) {
  const auto rows = static_cast<size_t>(state.range(0));
  data::SyntheticTableOptions options;
  options.rows = rows;
  options.seed = 42;
  const data::SyntheticTables tables = data::GenerateSyntheticTables(options);
  char dir_template[] = "/tmp/promptem_bench_phx_XXXXXX";
  const char* index_dir = mkdtemp(dir_template);
  if (index_dir == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  const em::ChunkScoreFn scorer =
      [](const std::vector<data::PairExample>& chunk) {
        std::vector<em::ProbPair> probs(chunk.size());
        for (size_t i = 0; i < chunk.size(); ++i) {
          const uint64_t h =
              ((static_cast<uint64_t>(static_cast<uint32_t>(
                    chunk[i].left_index))
                << 32) ^
               static_cast<uint32_t>(chunk[i].right_index)) *
              0x9E3779B97F4A7C15ULL;
          const float pos = static_cast<float>((h >> 40) & 0xFFFF) / 65535.0f;
          probs[i] = {1.0f - pos, pos};
        }
        return probs;
      };
  em::MatchPipelineResult result;
  data::MinHashBlocker::IndexStats index_stats;
  for (auto _ : state) {
    data::MinHashBlocker::Config blocker_config;
    blocker_config.index_backend =
        data::MinHashBlocker::IndexBackend::kHashIndexMmap;
    blocker_config.index_dir = index_dir;
    data::MinHashBlocker blocker(tables.left, tables.right, blocker_config);
    em::MatchPipelineConfig config;
    config.chunk_size = 8192;
    config.gold_label = [&tables](int l, int r) {
      return tables.GoldLabel(l, r);
    };
    em::MatchPipeline pipeline(&blocker, scorer, config);
    result = pipeline.Run();
    index_stats = blocker.index_stats();
    benchmark::DoNotOptimize(result.candidates);
  }
  std::system(("rm -rf " + std::string(index_dir)).c_str());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(result.candidates));
  state.counters["candidates"] = static_cast<double>(result.candidates);
  state.counters["index_file_bytes"] =
      static_cast<double>(index_stats.file_bytes);
  state.counters["index_ram_bytes"] =
      static_cast<double>(index_stats.ram_bytes);
  state.counters["completeness"] =
      static_cast<double>(result.metrics.tp + result.metrics.fn) /
      static_cast<double>(rows);
  state.counters["matches"] = static_cast<double>(result.matches);
}
BENCHMARK(BM_BlockScoreMatch_Mmap)
    ->Unit(benchmark::kMillisecond)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

// ---------------------------------------------------------------------
// Record caches and incremental matching (DESIGN.md §13).

/// Corpus vocabulary for the cache benches, built the way PretrainedLM
/// builds its own: tokenize every serialized record.
text::Vocab BuildBenchVocab(const data::GemDataset& ds) {
  std::vector<std::vector<std::string>> docs;
  docs.reserve(ds.left_table.size() + ds.right_table.size());
  for (const auto& r : ds.left_table) {
    docs.push_back(text::WordTokenize(data::SerializeRecord(r)));
  }
  for (const auto& r : ds.right_table) {
    docs.push_back(text::WordTokenize(data::SerializeRecord(r)));
  }
  return text::BuildVocab(docs, 1, 0);
}

/// `n` distinct candidate pairs cycling both tables (duplicates would
/// let the "cold" cache configurations hit within a single sweep).
std::vector<data::PairExample> MakeBenchPairs(size_t left, size_t right,
                                              size_t n) {
  std::vector<data::PairExample> pairs;
  std::set<std::pair<int, int>> seen;
  core::Rng rng(11);
  while (pairs.size() < n) {
    const int l = static_cast<int>(rng.NextU64(left));
    const int r = static_cast<int>(rng.NextU64(right));
    if (!seen.insert({l, r}).second) continue;
    pairs.push_back({l, r, 0});
  }
  return pairs;
}

/// PairEncoder::EncodeAll across pool sizes: Args({threads, warm}).
/// warm=0 invalidates the memo every iteration (pure parallel
/// serialize+tokenize throughput); warm=1 measures the memoized
/// steady state self-training actually runs in. Output is bitwise
/// identical at every pool size and cache state (tests/cache_test.cc
/// pins that; this records the speed).
void BM_EncodeChunkParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool warm = state.range(1) != 0;
  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 42);
  text::Vocab vocab = BuildBenchVocab(ds);
  em::PairEncoder encoder(&vocab, 64);
  encoder.FitSummarizer(ds);
  const std::vector<data::PairExample> pairs =
      MakeBenchPairs(ds.left_table.size(), ds.right_table.size(), 4096);
  const int saved = core::GetNumThreads();
  core::SetNumThreads(threads);
  if (warm) {
    auto warmup = encoder.EncodeAll(ds, pairs);
    benchmark::DoNotOptimize(warmup);
  }
  for (auto _ : state) {
    if (!warm) encoder.InvalidateCache();
    auto encoded = encoder.EncodeAll(ds, pairs);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs.size()));
  state.counters["threads"] = threads;
  state.counters["warm"] = warm ? 1 : 0;
  core::SetNumThreads(saved);
}
BENCHMARK(BM_EncodeChunkParallel)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({4, 1});

/// EmbeddingCache probe cost on the two pure paths: Arg 1 = every probe
/// hits (shared_ptr copy out of the sharded table), Arg 0 = every probe
/// misses (a different context tag, the cross-context isolation case).
void BM_EmbedCacheHitMiss(benchmark::State& state) {
  const bool hit = state.range(0) != 0;
  constexpr size_t kEntries = 4096;
  constexpr int kDim = 64;
  em::EmbeddingCache cache(1u << 14);
  const uint64_t tag = em::EmbeddingCache::ContextTag(0x1234u, 0x5678u);
  const uint64_t other_tag =
      em::EmbeddingCache::ContextTag(0x4321u, 0x5678u);
  for (size_t i = 0; i < kEntries; ++i) {
    cache.Insert(em::EmbeddingCache::PairKey(tag, static_cast<int>(i),
                                             static_cast<int>(i)),
                 std::vector<float>(kDim, static_cast<float>(i)));
  }
  const uint64_t probe_tag = hit ? tag : other_tag;
  for (auto _ : state) {
    size_t found = 0;
    for (size_t i = 0; i < kEntries; ++i) {
      auto entry = cache.Find(em::EmbeddingCache::PairKey(
          probe_tag, static_cast<int>(i), static_cast<int>(i)));
      found += entry != nullptr;
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kEntries));
  state.counters["hit"] = hit ? 1 : 0;
}
BENCHMARK(BM_EmbedCacheHitMiss)->Arg(0)->Arg(1);

/// The clustering strategy's per-iteration embedding sweep over a pool
/// that shrinks as pseudo-labels are taken — the workload --embed-cache
/// exists for. A frozen embedder (a fixed probe model, as in
/// PromptEM::Run) re-embeds the surviving pool every round; Arg 0 pays
/// the full transformer forward per pair per round, Arg 1 rides
/// EmbedBatchCached so each pair is embedded once per sweep. Keys are
/// the real restart-stable composites (DatasetFingerprint x
/// ParameterFingerprint), so this also prices key construction.
void BM_SelfTrainCached(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHomo, 42);
  text::Vocab vocab = BuildBenchVocab(ds);
  em::PairEncoder encoder(&vocab, 40);
  encoder.FitSummarizer(ds);
  const std::vector<data::PairExample> pool_pairs =
      MakeBenchPairs(ds.left_table.size(), ds.right_table.size(), 192);
  const std::vector<em::EncodedPair> xs = encoder.EncodeAll(ds, pool_pairs);

  nn::TransformerConfig config = ForwardBenchConfig();
  config.vocab_size = vocab.size();
  core::Rng init_rng(3);
  nn::TransformerEncoder embedder(config, &init_rng);
  embedder.Eval();
  const int max_len = config.max_seq_len;
  const em::PairEmbedFn embed = [&embedder, max_len](const em::EncodedPair& x,
                                                     core::Rng* rng) {
    std::vector<int> ids;
    ids.reserve(static_cast<size_t>(max_len));
    ids.push_back(text::SpecialTokens::kCls);
    for (int id : x.left_ids) {
      if (ids.size() + 2 >= static_cast<size_t>(max_len)) break;
      ids.push_back(id);
    }
    ids.push_back(text::SpecialTokens::kSep);
    for (int id : x.right_ids) {
      if (ids.size() + 1 >= static_cast<size_t>(max_len)) break;
      ids.push_back(id);
    }
    tensor::Tensor h = embedder.Encode(ids, rng);
    const int rows = h.shape()[0];
    const int dim = h.shape()[1];
    std::vector<float> pooled(static_cast<size_t>(dim), 0.0f);
    for (int t = 0; t < rows; ++t) {
      for (int d = 0; d < dim; ++d) {
        pooled[static_cast<size_t>(d)] += h.data()[t * dim + d];
      }
    }
    for (float& v : pooled) v /= static_cast<float>(rows);
    return pooled;
  };

  const uint64_t tag = em::EmbeddingCache::ContextTag(
      data::DatasetFingerprint(ds), nn::ParameterFingerprint(embedder));
  std::vector<uint64_t> all_keys;
  all_keys.reserve(pool_pairs.size());
  for (const auto& p : pool_pairs) {
    all_keys.push_back(
        em::EmbeddingCache::PairKey(tag, p.left_index, p.right_index));
  }

  int64_t embeds_requested = 0;
  size_t hits = 0;
  size_t misses = 0;
  for (auto _ : state) {
    // A fresh cache per sweep: round 1 pays every miss, later rounds hit
    // — exactly what one self-training run (or one restart with a
    // persisted file absent) experiences.
    em::EmbeddingCache cache(1u << 12);
    std::vector<em::EncodedPair> pool = xs;
    std::vector<uint64_t> keys = all_keys;
    while (pool.size() > 8) {
      auto embeddings = em::EmbedBatchCached(embed, pool, {},
                                             cached ? &cache : nullptr, keys);
      benchmark::DoNotOptimize(embeddings);
      embeds_requested += static_cast<int64_t>(pool.size());
      // Self-training takes confident pairs out of the pool each round;
      // the fixed 20% take-rate stands in for the confidence threshold.
      const size_t keep = pool.size() - pool.size() / 5;
      pool.resize(keep);
      keys.resize(keep);
    }
    hits = cache.stats().hits;
    misses = cache.stats().misses;
  }
  state.SetItemsProcessed(embeds_requested);
  state.counters["cached"] = cached ? 1 : 0;
  state.counters["cache_hits"] = static_cast<double>(hits);
  state.counters["cache_misses"] = static_cast<double>(misses);
}
BENCHMARK(BM_SelfTrainCached)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1);

/// Re-match cost after a delta of Arg(0) changed records, through
/// em::IncrementalMatcher over the 10k-row synthetic workload. The
/// counters are the claim: `rescored` stays O(delta x candidates-per-
/// record) while `reused` carries the rest of the candidate set, and
/// `candidates` ~ `full_candidates` shows the blocker still streams the
/// full set (scoring, not blocking, is what the cache saves).
void BM_IncrementalMatch(benchmark::State& state) {
  const int delta_records = static_cast<int>(state.range(0));
  data::SyntheticTableOptions options;
  options.rows = 10000;
  options.seed = 42;
  const data::SyntheticTables tables = data::GenerateSyntheticTables(options);
  data::GemDataset ds;
  ds.left_table = tables.left;
  ds.right_table = tables.right;

  // The same deterministic hash-stub scorer as BM_BlockScoreMatch: this
  // bench prices the delta machinery, not model forwards (which would
  // only widen the rescored-vs-reused gap).
  const em::IncrementalMatcher::ScorerFactory scorer_factory =
      [](const data::GemDataset&) {
        return em::ChunkScoreFn(
            [](const std::vector<data::PairExample>& chunk) {
              std::vector<em::ProbPair> probs(chunk.size());
              for (size_t i = 0; i < chunk.size(); ++i) {
                const uint64_t h =
                    ((static_cast<uint64_t>(static_cast<uint32_t>(
                          chunk[i].left_index))
                      << 32) ^
                     static_cast<uint32_t>(chunk[i].right_index)) *
                    0x9E3779B97F4A7C15ULL;
                const float pos =
                    static_cast<float>((h >> 40) & 0xFFFF) / 65535.0f;
                probs[i] = {1.0f - pos, pos};
              }
              return probs;
            });
      };
  em::IncrementalMatcher::BlockerFactory blocker_factory =
      [](const data::GemDataset& d) {
        return std::unique_ptr<data::Blocker>(
            std::make_unique<data::MinHashBlocker>(d.left_table,
                                                   d.right_table));
      };
  em::IncrementalMatcher::Config config;
  config.pipeline.chunk_size = 8192;
  em::IncrementalMatcher matcher(std::move(ds), scorer_factory,
                                 std::move(blocker_factory), config);
  const auto full = matcher.FullMatch();
  benchmark::DoNotOptimize(full.matches);
  const size_t full_candidates = matcher.last_stats().candidates;

  const auto right_rows =
      static_cast<int>(matcher.dataset().right_table.size());
  for (auto _ : state) {
    em::RecordDelta delta;
    delta.upserts.reserve(static_cast<size_t>(delta_records));
    for (int i = 0; i < delta_records; ++i) {
      em::RecordUpsert up;
      up.left = false;
      up.index = (i * 37) % right_rows;
      up.record = matcher.dataset().right_table[static_cast<size_t>(up.index)];
      delta.upserts.push_back(std::move(up));
    }
    auto result = matcher.ApplyDelta(delta);
    benchmark::DoNotOptimize(result.matches);
  }
  state.counters["delta"] = delta_records;
  state.counters["candidates"] =
      static_cast<double>(matcher.last_stats().candidates);
  state.counters["rescored"] =
      static_cast<double>(matcher.last_stats().rescored);
  state.counters["reused"] = static_cast<double>(matcher.last_stats().reused);
  state.counters["full_candidates"] = static_cast<double>(full_candidates);
}
BENCHMARK(BM_IncrementalMatch)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256);

void BM_TdMatchPpr(benchmark::State& state) {
  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiHeter, 42);
  baselines::TdMatchGraph graph(ds);
  for (auto _ : state) {
    auto ppr = graph.Ppr(graph.LeftNode(0));
    benchmark::DoNotOptimize(ppr);
  }
  state.counters["nodes"] = graph.num_nodes();
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}
BENCHMARK(BM_TdMatchPpr);

// ---------------------------------------------------------------------
// Serving (DESIGN.md §14): request latency and batched throughput
// through a live promptem_serve daemon over loopback TCP.

/// Tiny in-bench LM (the baselines_test recipe): the serve benches price
/// the serving layer, not model quality, so the cheapest trainable
/// encoder is the right fixture.
const lm::PretrainedLM& ServeBenchLM() {
  static const lm::PretrainedLM* kLm = [] {
    data::BenchmarkGenOptions small;
    small.size_scale = 0.3;
    std::vector<data::GemDataset> datasets = {
        data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 13, small),
    };
    lm::Corpus corpus = lm::BuildCorpus(datasets, 13);
    nn::TransformerConfig config;
    config.dim = 16;
    config.num_layers = 1;
    config.num_heads = 2;
    config.ffn_dim = 32;
    config.max_seq_len = 96;
    lm::MlmOptions options;
    options.epochs = 1;
    options.max_seq_len = 96;
    core::Rng rng(13);
    return lm::PretrainedLM::Pretrain(corpus, config, options,
                                      lm::RequiredPromptTokens(), &rng)
        .release();
  }();
  return *kLm;
}

/// One resident daemon shared by every serve benchmark: DeepMatcher
/// trained once at first use (the startup cost the daemon exists to
/// amortize), then served over loopback TCP exactly like production.
struct ServeBenchDaemon {
  std::unique_ptr<serve::MatchService> service;
  std::unique_ptr<serve::ServeDaemon> daemon;
  size_t left_rows = 0;
  size_t right_rows = 0;

  static ServeBenchDaemon& Instance() {
    static ServeBenchDaemon* kDaemon = [] {
      core::IgnoreSigPipe();
      auto* d = new ServeBenchDaemon();
      data::SyntheticTableOptions options;
      options.rows = 60;
      options.seed = 7;
      data::SyntheticTables tables = data::GenerateSyntheticTables(options);
      data::GemDataset ds = tables.ToDataset(96, 7 ^ 0xDA7AULL);
      d->left_rows = ds.left_table.size();
      d->right_rows = ds.right_table.size();
      core::Rng rng(7);
      data::LowResourceSplit split = data::MakeLowResourceSplit(ds, 0.25, &rng);
      train::RunOptions run;
      run.seed = 7;
      run.epochs = 2;
      run.student_epochs = 2;
      serve::MatchService::Config config;
      config.default_matcher = "DeepMatcher";
      d->service = std::make_unique<serve::MatchService>(
          &ServeBenchLM(), std::move(ds), std::move(split), run, config);
      if (!d->service->TrainAll().ok()) std::abort();
      d->daemon = std::make_unique<serve::ServeDaemon>(
          d->service.get(), serve::ServeDaemon::Config{0, {}});
      if (!d->daemon->Start().ok()) std::abort();
      return d;
    }();
    return *kDaemon;
  }
};

int ServeBenchConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::vector<data::PairExample> ServeBenchPairs(const ServeBenchDaemon& d,
                                               size_t n, uint64_t seed) {
  core::Rng rng(seed);
  std::vector<data::PairExample> pairs(n);
  for (auto& pair : pairs) {
    pair.left_index = static_cast<int>(rng.NextU64(d.left_rows));
    pair.right_index = static_cast<int>(rng.NextU64(d.right_rows));
    pair.label = data::kUnlabeledLabel;
  }
  return pairs;
}

/// One closed-loop round trip; aborts the bench on transport failure.
double ServeBenchRoundTripUs(int fd, const serve::MatchRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  if (!serve::WriteFrame(fd, serve::SerializeRequest(request)).ok()) {
    std::abort();
  }
  std::string payload;
  if (!serve::ReadFrame(fd, &payload).ok()) std::abort();
  auto parsed = serve::ParseMatchResponse(payload);
  if (!parsed.ok() ||
      parsed.value().status != serve::ResponseStatus::kOk) {
    std::abort();
  }
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Closed-loop single-client latency distribution. Manual time: each
/// benchmark iteration runs a fixed sweep of round trips and reports the
/// requested percentile as its time, so ns/op reads directly as "p50
/// served latency" / "p99 served latency".
void ServeLatencyBench(benchmark::State& state, double percentile) {
  ServeBenchDaemon& d = ServeBenchDaemon::Instance();
  const int fd = ServeBenchConnect(d.daemon->port());
  if (fd < 0) std::abort();
  constexpr size_t kSweep = 100;
  constexpr size_t kPairs = 8;
  size_t served = 0;
  for (auto _ : state) {
    std::vector<double> latencies_us;
    latencies_us.reserve(kSweep);
    for (size_t i = 0; i < kSweep; ++i) {
      serve::MatchRequest request;
      request.id = i + 1;
      request.pairs = ServeBenchPairs(d, kPairs, i);
      latencies_us.push_back(ServeBenchRoundTripUs(fd, request));
      ++served;
    }
    std::sort(latencies_us.begin(), latencies_us.end());
    const size_t index = std::min(
        latencies_us.size() - 1,
        static_cast<size_t>(percentile * (latencies_us.size() - 1)));
    state.SetIterationTime(latencies_us[index] * 1e-6);
  }
  ::close(fd);
  state.SetItemsProcessed(static_cast<int64_t>(served * kPairs));
  state.counters["pairs_per_req"] = kPairs;
}

void BM_ServeP50(benchmark::State& state) {
  ServeLatencyBench(state, 0.50);
}
BENCHMARK(BM_ServeP50)->UseManualTime()->Unit(benchmark::kMicrosecond);

void BM_ServeP99(benchmark::State& state) {
  ServeLatencyBench(state, 0.99);
}
BENCHMARK(BM_ServeP99)->UseManualTime()->Unit(benchmark::kMicrosecond);

/// One-request-at-a-time scoring, the pre-daemon baseline: every query
/// pays the full one-shot startup the CLI pays — build the service over
/// the tables and train the matcher — before scoring its pairs. This is
/// the cost `promptem_serve` exists to amortize; BM_ServeThroughput
/// below is the same query against the resident daemon.
void BM_OneShotScore(benchmark::State& state) {
  ServeBenchDaemon& d = ServeBenchDaemon::Instance();  // dims + LM warm
  constexpr size_t kPairs = 8;
  size_t served = 0;
  for (auto _ : state) {
    data::SyntheticTableOptions options;
    options.rows = 60;
    options.seed = 7;
    data::SyntheticTables tables = data::GenerateSyntheticTables(options);
    data::GemDataset ds = tables.ToDataset(96, 7 ^ 0xDA7AULL);
    core::Rng rng(7);
    data::LowResourceSplit split = data::MakeLowResourceSplit(ds, 0.25, &rng);
    train::RunOptions run;
    run.seed = 7;
    run.epochs = 2;
    run.student_epochs = 2;
    serve::MatchService::Config config;
    config.default_matcher = "DeepMatcher";
    serve::MatchService service(&ServeBenchLM(), std::move(ds),
                                std::move(split), run, config);
    if (!service.TrainAll().ok()) std::abort();
    serve::MatchRequest request;
    request.id = 1;
    request.pairs = ServeBenchPairs(d, kPairs, served);
    const serve::MatchResponse response = service.Score(request);
    if (response.status != serve::ResponseStatus::kOk) std::abort();
    benchmark::DoNotOptimize(response.probs.data());
    ++served;
  }
  state.SetItemsProcessed(static_cast<int64_t>(served * kPairs));
  state.counters["pairs_per_req"] = kPairs;
}
BENCHMARK(BM_OneShotScore)->Unit(benchmark::kMillisecond);

/// The resident daemon under a fixed request budget pushed by Arg(0)
/// concurrent closed-loop clients. Compare items/s against
/// BM_OneShotScore: batched resident serving beats one-request-at-a-time
/// scoring by the full train-per-query factor. The avg_batch counter
/// (the response "batch" field) records the coalescing machinery at
/// work: 16 clients pile requests behind the busy scorer and each
/// ScoreProbs sweep rides ~16x wider. On a single core that width is
/// observability, not speed — per-pair model cost dominates and the
/// per-sweep overhead it amortizes is negligible; the width turns into
/// throughput when the pool has cores to spread a sweep across.
void BM_ServeThroughput(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  ServeBenchDaemon& d = ServeBenchDaemon::Instance();
  constexpr int kTotalRequests = 96;
  constexpr size_t kPairs = 8;
  const int per_client = kTotalRequests / clients;
  uint64_t batch_sum = 0;
  uint64_t responses = 0;
  for (auto _ : state) {
    std::vector<std::thread> workers;
    std::atomic<uint64_t> iter_batch_sum{0};
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        const int fd = ServeBenchConnect(d.daemon->port());
        if (fd < 0) std::abort();
        for (int i = 0; i < per_client; ++i) {
          serve::MatchRequest request;
          request.id = static_cast<uint64_t>(i + 1);
          request.pairs =
              ServeBenchPairs(d, kPairs, static_cast<uint64_t>(c * 977 + i));
          if (!serve::WriteFrame(fd, serve::SerializeRequest(request))
                   .ok()) {
            std::abort();
          }
          std::string payload;
          if (!serve::ReadFrame(fd, &payload).ok()) std::abort();
          auto parsed = serve::ParseMatchResponse(payload);
          if (!parsed.ok() ||
              parsed.value().status != serve::ResponseStatus::kOk) {
            std::abort();
          }
          iter_batch_sum += parsed.value().batch_size;
        }
        ::close(fd);
      });
    }
    for (auto& worker : workers) worker.join();
    batch_sum += iter_batch_sum.load();
    responses += static_cast<uint64_t>(clients) *
                 static_cast<uint64_t>(per_client);
  }
  state.SetItemsProcessed(static_cast<int64_t>(responses * kPairs));
  state.counters["clients"] = clients;
  // Mean coalesced sweep width observed by the clients (the "batch"
  // response field): 8 = no coalescing, larger = the queue at work.
  state.counters["avg_batch"] =
      responses == 0
          ? 0.0
          : static_cast<double>(batch_sum) / static_cast<double>(responses);
}
BENCHMARK(BM_ServeThroughput)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Arg(1)
    ->Arg(16);

}  // namespace

/// BENCHMARK_MAIN, except that when the caller did not ask for a report
/// file the JSON goes to BENCH_micro.json in the working directory — and
/// that default recording is refused unless this binary was configured as
/// a plain Release build (tools/run_bench.sh is the supported recorder).
/// An explicit --benchmark_out is always honored.
int main(int argc, char** argv) {
  const std::string build_type = PROMPTEM_BENCH_BUILD_TYPE;
  const std::string sanitize = PROMPTEM_BENCH_SANITIZE;
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    if (build_type != "Release" || !sanitize.empty()) {
      std::fprintf(stderr,
                   "bench_micro_kernels: refusing to record "
                   "BENCH_micro.json from a '%s'%s%s build; use "
                   "tools/run_bench.sh, or pass --benchmark_out=... to "
                   "write elsewhere.\n",
                   build_type.c_str(),
                   sanitize.empty() ? "" : " + sanitizer=",
                   sanitize.c_str());
      return 1;
    }
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  // The system libbenchmark's library_build_type reflects how the
  // *library* was compiled; this stamp records how *this project* was.
  benchmark::AddCustomContext("promptem_build_type", build_type);
  if (!sanitize.empty()) {
    benchmark::AddCustomContext("promptem_sanitize", sanitize);
  }
  // Which GEMM path the unpinned benchmarks actually ran (the BM_*Scalar
  // twins pin kScalar regardless); see promptem_cli --kernel-info.
  benchmark::AddCustomContext(
      "promptem_kernel_variant",
      tensor::kernels::KernelVariantName(
          tensor::kernels::ActiveKernelVariant()));
  benchmark::AddCustomContext(
      "promptem_cpu_avx2",
      tensor::kernels::CpuSupportsAvx2() ? "yes" : "no");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
