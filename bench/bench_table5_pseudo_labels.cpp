// Regenerates Table 5: quality (TPR / TNR) of the pseudo-labels produced
// by the three selection strategies — uncertainty (PromptEM's choice),
// confidence, and clustering — with u_r fixed to 0.1.

#include <memory>

#include "bench_util.h"
#include "promptem/promptem.h"

int main() {
  using namespace promptem;
  const auto& lm = bench::SharedLM();
  const bool fast = bench::FastMode();

  bench::PrintHeader(
      "Table 5: Results of pseudo-label selection strategies (u_r = 0.1)",
      "TPR / TNR of the selected pseudo-labels against hidden gold "
      "labels.");

  core::TablePrinter table({"Dataset", "Uncert TPR", "Uncert TNR",
                            "Conf TPR", "Conf TNR", "Clust TPR",
                            "Clust TNR"});

  for (auto kind : data::AllBenchmarks()) {
    data::GemDataset ds = data::GenerateBenchmark(kind, bench::kSeed);
    data::LowResourceSplit split = bench::DefaultSplit(ds);
    em::PairEncoder encoder = em::MakePairEncoder(lm, ds);
    auto labeled = encoder.EncodeAll(ds, split.labeled);
    auto unlabeled = encoder.EncodeAll(ds, split.unlabeled);
    auto valid = encoder.EncodeAll(ds, split.valid);

    // One teacher per dataset, shared by all three strategies.
    core::Rng model_rng(bench::kSeed);
    em::PromptModel teacher(lm, em::PromptModelConfig{}, &model_rng);
    em::TrainOptions train_options;
    train_options.epochs = fast ? 2 : 10;
    em::TrainClassifier(&teacher, labeled, valid, train_options);

    em::EmbeddingFn embed = [&teacher](const em::EncodedPair& x,
                                       core::Rng* rng) {
      tensor::Tensor e = teacher.PairEmbedding(x, rng);
      return std::vector<float>(e.data(), e.data() + e.numel());
    };

    std::vector<std::string> row = {ds.name};
    for (auto strategy : {em::PseudoLabelStrategy::kUncertainty,
                          em::PseudoLabelStrategy::kConfidence,
                          em::PseudoLabelStrategy::kClustering}) {
      core::Rng sel_rng(bench::kSeed + 1);
      em::PseudoLabelResult r = em::SelectPseudoLabels(
          &teacher, unlabeled, strategy, /*ratio=*/0.1,
          /*mc_passes=*/fast ? 3 : 10, &sel_rng, embed);
      row.push_back(core::StrFormat("%.3f", r.tpr));
      row.push_back(core::StrFormat("%.3f", r.tnr));
    }
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[table5] %s done\n", ds.name.c_str());
  }
  table.Print();
  return 0;
}
