// Regenerates Table 2: precision / recall / F1 of every method (eight
// baselines, PromptEM, and its three ablations) on all eight benchmarks
// under the default low-resource setting.

#include <vector>

#include "bench_util.h"

int main() {
  using namespace promptem;
  const auto& lm = bench::SharedLM();
  baselines::RunOptions options = bench::DefaultRunOptions();

  bench::PrintHeader(
      "Table 2: Results of all the methods under the default "
      "low-resource setting",
      "Rows print P / R / F1 (%) per dataset.");

  std::vector<baselines::Method> methods = baselines::BaselineMethods();
  for (auto m : baselines::PromptEmVariants()) methods.push_back(m);

  std::vector<std::string> header = {"Method"};
  std::vector<data::GemDataset> datasets;
  for (auto kind : data::AllBenchmarks()) {
    datasets.push_back(data::GenerateBenchmark(kind, bench::kSeed));
    header.push_back(datasets.back().name);
  }
  core::TablePrinter table(header);

  for (baselines::Method method : methods) {
    std::vector<std::string> row = {baselines::MethodName(method)};
    for (size_t d = 0; d < datasets.size(); ++d) {
      const data::GemDataset& ds = datasets[d];
      data::LowResourceSplit split = bench::DefaultSplit(ds);
      baselines::MethodResult r = baselines::RunMethod(
          method, lm, data::AllBenchmarks()[d], ds, split, options);
      row.push_back(core::StrFormat("%.1f/%.1f/%.1f",
                                    r.test.Precision() * 100,
                                    r.test.Recall() * 100,
                                    r.test.F1() * 100));
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
    // Incremental progress (full table reprinted at the end).
    std::fprintf(stderr, "[table2] %s done\n",
                 baselines::MethodName(method));
  }
  table.Print();
  return 0;
}
