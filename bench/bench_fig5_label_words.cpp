// Regenerates Figure 5 (and the §5.5 label-word study): the designed
// label words (matched/similar/relevant vs mismatched/different/
// irrelevant) against the simple pair (matched vs mismatched), for both
// continuous templates.

#include <vector>

#include "bench_util.h"
#include "promptem/promptem.h"

int main() {
  using namespace promptem;
  const auto& lm = bench::SharedLM();
  const bool fast = bench::FastMode();

  bench::PrintHeader(
      "Figure 5: Effect of label-word choices (F1 %)",
      "Designed words encode the general binary relationship GEM needs; "
      "'simple' = matched/mismatched only.");

  struct Variant {
    const char* name;
    em::TemplateType type;
    em::LabelWordsType words;
  };
  const std::vector<Variant> variants = {
      {"T1 designed", em::TemplateType::kT1, em::LabelWordsType::kDesigned},
      {"T1 simple", em::TemplateType::kT1, em::LabelWordsType::kSimple},
      {"T2 designed", em::TemplateType::kT2, em::LabelWordsType::kDesigned},
      {"T2 simple", em::TemplateType::kT2, em::LabelWordsType::kSimple},
  };

  std::vector<std::string> header = {"Variant"};
  std::vector<data::GemDataset> datasets;
  for (auto kind : data::AllBenchmarks()) {
    datasets.push_back(data::GenerateBenchmark(kind, bench::kSeed));
    header.push_back(data::GetBenchmarkInfo(kind).abbrev);
  }
  header.push_back("Avg");
  core::TablePrinter table(header);

  for (const Variant& variant : variants) {
    std::vector<std::string> row = {variant.name};
    double total = 0.0;
    for (auto& ds : datasets) {
      data::LowResourceSplit split = bench::DefaultSplit(ds);
      em::PairEncoder encoder = em::MakePairEncoder(lm, ds);
      auto labeled = encoder.EncodeAll(ds, split.labeled);
      auto valid = encoder.EncodeAll(ds, split.valid);
      auto test = encoder.EncodeAll(ds, split.test);

      em::PromptModelConfig config;
      config.template_type = variant.type;
      config.template_mode = em::TemplateMode::kContinuous;
      config.label_words = variant.words;
      core::Rng rng(bench::kSeed);
      em::PromptModel model(lm, config, &rng);
      em::TrainOptions options;
      options.epochs = fast ? 2 : 8;
      em::TrainClassifier(&model, labeled, valid, options);
      const double f1 = em::Evaluate(&model, test).F1();
      total += f1;
      row.push_back(core::StrFormat("%.1f", f1 * 100));
    }
    row.push_back(core::StrFormat("%.1f", total / datasets.size() * 100));
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[fig5] %s done\n", variant.name);
  }
  table.Print();
  return 0;
}
