// Ablation (DESIGN.md): sensitivity of pseudo-label quality to the
// MC-Dropout pass count K. The paper fixes K = 10; this bench shows the
// TPR/TNR trade-off that justifies it.

#include "bench_util.h"
#include "promptem/promptem.h"

int main() {
  using namespace promptem;
  const auto& lm = bench::SharedLM();
  const bool fast = bench::FastMode();

  bench::PrintHeader(
      "Ablation: MC-Dropout pass count K vs pseudo-label quality",
      "u_r = 0.1, uncertainty strategy; paper uses K = 10.");

  const std::vector<int> pass_counts = fast ? std::vector<int>{1, 5}
                                            : std::vector<int>{1, 5, 10, 20};
  const std::vector<data::BenchmarkKind> kinds = {
      data::BenchmarkKind::kSemiHomo, data::BenchmarkKind::kSemiTextC,
      data::BenchmarkKind::kRelText};

  std::vector<std::string> header = {"K"};
  for (auto kind : kinds) {
    std::string abbrev = data::GetBenchmarkInfo(kind).abbrev;
    header.push_back(abbrev + " TPR");
    header.push_back(abbrev + " TNR");
  }
  core::TablePrinter table(header);

  // Train one teacher per dataset; reuse across K values so rows differ
  // only by the estimator.
  struct Prepared {
    std::unique_ptr<em::PromptModel> teacher;
    std::vector<em::EncodedPair> unlabeled;
  };
  std::vector<Prepared> prepared;
  for (auto kind : kinds) {
    data::GemDataset ds = data::GenerateBenchmark(kind, bench::kSeed);
    data::LowResourceSplit split = bench::DefaultSplit(ds);
    em::PairEncoder encoder = em::MakePairEncoder(lm, ds);
    auto labeled = encoder.EncodeAll(ds, split.labeled);
    auto valid = encoder.EncodeAll(ds, split.valid);
    Prepared p;
    core::Rng rng(bench::kSeed);
    p.teacher =
        std::make_unique<em::PromptModel>(lm, em::PromptModelConfig{}, &rng);
    em::TrainOptions options;
    options.epochs = fast ? 2 : 10;
    em::TrainClassifier(p.teacher.get(), labeled, valid, options);
    p.unlabeled = encoder.EncodeAll(ds, split.unlabeled);
    prepared.push_back(std::move(p));
  }

  for (int k : pass_counts) {
    std::vector<std::string> row = {std::to_string(k)};
    for (auto& p : prepared) {
      core::Rng rng(bench::kSeed + 7);
      em::PseudoLabelResult r = em::SelectPseudoLabels(
          p.teacher.get(), p.unlabeled,
          em::PseudoLabelStrategy::kUncertainty, 0.1, k, &rng);
      row.push_back(core::StrFormat("%.3f", r.tpr));
      row.push_back(core::StrFormat("%.3f", r.tnr));
    }
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[mc_passes] K=%d done\n", k);
  }
  table.Print();
  return 0;
}
