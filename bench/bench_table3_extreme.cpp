// Regenerates Table 3: the extremely challenging low-resource setting.
// The paper fixes 80 training labels for every dataset regardless of its
// size; at this repository's scale the equivalent uniform budget is 14
// labels (see EXPERIMENTS.md for the mapping).

#include <vector>

#include "bench_util.h"

int main() {
  using namespace promptem;
  const auto& lm = bench::SharedLM();
  baselines::RunOptions options = bench::DefaultRunOptions();
  constexpr int kExtremeLabels = 14;

  bench::PrintHeader(
      "Table 3: Results under the extremely challenging low-resource "
      "setting",
      core::StrFormat("Uniform %d training labels per dataset "
                      "(paper: 80 at ~25x our scale).",
                      kExtremeLabels));

  std::vector<baselines::Method> methods = baselines::BaselineMethods();
  methods.push_back(baselines::Method::kPromptEM);

  std::vector<std::string> header = {"Method"};
  std::vector<data::GemDataset> datasets;
  for (auto kind : data::AllBenchmarks()) {
    datasets.push_back(data::GenerateBenchmark(kind, bench::kSeed));
    header.push_back(datasets.back().name);
  }
  core::TablePrinter table(header);

  for (baselines::Method method : methods) {
    std::vector<std::string> row = {baselines::MethodName(method)};
    for (size_t d = 0; d < datasets.size(); ++d) {
      const data::GemDataset& ds = datasets[d];
      core::Rng rng(bench::kSeed);
      data::LowResourceSplit split =
          data::MakeCountSplit(ds, kExtremeLabels, &rng);
      baselines::MethodResult r = baselines::RunMethod(
          method, lm, data::AllBenchmarks()[d], ds, split, options);
      row.push_back(core::StrFormat("%.1f/%.1f/%.1f",
                                    r.test.Precision() * 100,
                                    r.test.Recall() * 100,
                                    r.test.F1() * 100));
    }
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[table3] %s done\n",
                 baselines::MethodName(method));
  }
  table.Print();
  return 0;
}
