// Regenerates Table 4: training time and memory usage of the best
// baselines per category (SBERT, Rotom, TDmatch) against PromptEM and
// PromptEM- (without dynamic data pruning). Also reproduces TDmatch's
// scalability blow-up by growing SEMI-REL with size_scale.

#include <vector>

#include "bench_util.h"
#include "core/mem_tracker.h"

int main() {
  using namespace promptem;
  const auto& lm = bench::SharedLM();
  baselines::RunOptions options = bench::DefaultRunOptions();

  bench::PrintHeader(
      "Table 4: Efficiency comparison (training time T. and tracked peak "
      "memory M.)",
      "PromptEM- = PromptEM without dynamic data pruning. Memory is live "
      "tensor/embedding bytes (stand-in for the paper's GPU memory).");

  const std::vector<baselines::Method> methods = {
      baselines::Method::kSentenceBert, baselines::Method::kRotom,
      baselines::Method::kTdMatch, baselines::Method::kPromptEMNoDDP,
      baselines::Method::kPromptEM};

  std::vector<std::string> header = {"Dataset"};
  for (auto m : methods) {
    std::string name = baselines::MethodName(m);
    if (m == baselines::Method::kPromptEMNoDDP) name = "PromptEM-";
    header.push_back(name + " T.");
    header.push_back(name + " M.");
  }
  core::TablePrinter table(header);

  for (auto kind : data::AllBenchmarks()) {
    data::GemDataset ds = data::GenerateBenchmark(kind, bench::kSeed);
    data::LowResourceSplit split = bench::DefaultSplit(ds);
    std::vector<std::string> row = {
        data::GetBenchmarkInfo(kind).abbrev};
    for (auto method : methods) {
      baselines::MethodResult r =
          baselines::RunMethod(method, lm, kind, ds, split, options);
      row.push_back(core::FormatDuration(r.train_seconds));
      row.push_back(core::FormatBytes(r.peak_memory_bytes));
    }
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[table4] %s done\n",
                 data::GetBenchmarkInfo(kind).name);
  }
  table.Print();

  // Scalability: TDmatch's whole-graph random walks are quadratic-ish in
  // input size; the LM methods grow linearly in the labeled budget.
  std::printf("\nScalability on SEMI-REL (size_scale sweep)\n");
  core::TablePrinter scale_table(
      {"scale", "TDmatch T.", "TDmatch M.", "PromptEM T.", "PromptEM M."});
  for (double scale : {1.0, 2.0, 3.0}) {
    if (bench::FastMode() && scale > 1.0) break;
    data::BenchmarkGenOptions gen;
    gen.size_scale = scale;
    data::GemDataset ds =
        data::GenerateBenchmark(data::BenchmarkKind::kSemiRel, bench::kSeed,
                                gen);
    data::LowResourceSplit split = bench::DefaultSplit(ds);
    baselines::MethodResult td = baselines::RunMethod(
        baselines::Method::kTdMatch, lm, data::BenchmarkKind::kSemiRel, ds,
        split, options);
    baselines::MethodResult pe = baselines::RunMethod(
        baselines::Method::kPromptEM, lm, data::BenchmarkKind::kSemiRel, ds,
        split, options);
    scale_table.AddRow({core::StrFormat("%.0fx", scale),
                        core::FormatDuration(td.train_seconds),
                        core::FormatBytes(td.peak_memory_bytes),
                        core::FormatDuration(pe.train_seconds),
                        core::FormatBytes(pe.peak_memory_bytes)});
  }
  scale_table.Print();
  return 0;
}
