// Regenerates Figure 3: F1 as the training rate sweeps 5% -> 25%,
// comparing PromptEM with a supervised LM baseline (Ditto) and the
// unsupervised TDmatch (whose flat line is its label independence).
// Four representative datasets keep the sweep within the CPU budget.

#include <vector>

#include "bench_util.h"

int main() {
  using namespace promptem;
  const auto& lm = bench::SharedLM();
  baselines::RunOptions options = bench::DefaultRunOptions();
  if (!bench::FastMode()) {
    options.epochs = 8;
    options.student_epochs = 8;
  }

  bench::PrintHeader(
      "Figure 3: F1 (%) under different low-resource settings",
      "Series per method; one block per dataset; x = training rate.");

  const std::vector<data::BenchmarkKind> kinds = {
      data::BenchmarkKind::kSemiHomo, data::BenchmarkKind::kSemiTextC,
      data::BenchmarkKind::kRelText, data::BenchmarkKind::kGeoHeter};
  const std::vector<baselines::Method> methods = {
      baselines::Method::kPromptEM, baselines::Method::kDitto,
      baselines::Method::kTdMatch};
  const std::vector<double> rates = {0.05, 0.10, 0.15, 0.20, 0.25};

  for (auto kind : kinds) {
    data::GemDataset ds = data::GenerateBenchmark(kind, bench::kSeed);
    std::printf("\n[%s]\n", ds.name.c_str());
    std::vector<std::string> header = {"Method"};
    for (double r : rates) {
      header.push_back(core::StrFormat("%.0f%%", r * 100));
    }
    core::TablePrinter table(header);
    for (auto method : methods) {
      std::vector<std::string> row = {baselines::MethodName(method)};
      for (double rate : rates) {
        core::Rng rng(bench::kSeed);
        data::LowResourceSplit split =
            data::MakeLowResourceSplit(ds, rate, &rng);
        baselines::MethodResult r =
            baselines::RunMethod(method, lm, kind, ds, split, options);
        row.push_back(core::StrFormat("%.1f", r.test.F1() * 100));
      }
      table.AddRow(std::move(row));
      std::fprintf(stderr, "[fig3] %s %s done\n", ds.name.c_str(),
                   baselines::MethodName(method));
    }
    table.Print();
  }
  return 0;
}
