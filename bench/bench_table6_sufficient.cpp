// Regenerates Table 6 (Appendix A): results when the full training pool
// is labeled ("sufficient resource"), including the PromptEM w/o PT
// ablation. DADER and TDmatch* are skipped here (as sufficiency removes
// their motivation and they dominate runtime); TDmatch is unchanged from
// Table 2 because it never uses labels.

#include <vector>

#include "bench_util.h"

int main() {
  using namespace promptem;
  const auto& lm = bench::SharedLM();
  baselines::RunOptions options = bench::DefaultRunOptions();
  if (!bench::FastMode()) {
    // The labeled pool is ~6x larger than the low-resource default;
    // shorten the schedule to keep total cost comparable.
    options.epochs = 4;
    options.student_epochs = 4;
  }

  bench::PrintHeader(
      "Table 6: Results of the methods under the sufficient resource "
      "setting",
      "All training pairs labeled (rate = 100%).");

  const std::vector<baselines::Method> methods = {
      baselines::Method::kDeepMatcher, baselines::Method::kBert,
      baselines::Method::kSentenceBert, baselines::Method::kDitto,
      baselines::Method::kRotom, baselines::Method::kTdMatch,
      baselines::Method::kPromptEM, baselines::Method::kPromptEMNoPT};

  std::vector<std::string> header = {"Method"};
  std::vector<data::GemDataset> datasets;
  for (auto kind : data::AllBenchmarks()) {
    datasets.push_back(data::GenerateBenchmark(kind, bench::kSeed));
    header.push_back(datasets.back().name);
  }
  core::TablePrinter table(header);

  for (baselines::Method method : methods) {
    std::vector<std::string> row = {baselines::MethodName(method)};
    for (size_t d = 0; d < datasets.size(); ++d) {
      const data::GemDataset& ds = datasets[d];
      core::Rng rng(bench::kSeed);
      data::LowResourceSplit split =
          data::MakeLowResourceSplit(ds, 1.0, &rng);
      baselines::MethodResult r = baselines::RunMethod(
          method, lm, data::AllBenchmarks()[d], ds, split, options);
      row.push_back(core::StrFormat("%.1f/%.1f/%.1f",
                                    r.test.Precision() * 100,
                                    r.test.Recall() * 100,
                                    r.test.F1() * 100));
    }
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[table6] %s done\n",
                 baselines::MethodName(method));
  }
  table.Print();
  return 0;
}
