// Regenerates Table 1: statistics of the eight benchmark datasets —
// domain, table sizes, mean attribute counts, total labeled examples,
// default low-resource rate, and the resulting training-label budget.

#include "bench_util.h"

int main() {
  using namespace promptem;
  bench::PrintHeader(
      "Table 1: Statistics of the datasets",
      "Synthetic reconstructions of the Machamp + GEO-HETER benchmarks "
      "(sizes scaled for single-core CPU; structure preserved).");

  core::TablePrinter table({"Dataset", "Domain", "L#row", "L#attr", "R#row",
                            "R#attr", "All", "%rate", "Train", "Digit%"});
  for (auto kind : data::AllBenchmarks()) {
    data::GemDataset ds = data::GenerateBenchmark(kind, bench::kSeed);
    data::LowResourceSplit split = bench::DefaultSplit(ds);
    table.AddRow({
        ds.name,
        ds.domain,
        std::to_string(ds.left_table.size()),
        core::StrFormat("%.2f", data::GemDataset::MeanAttrs(ds.left_table)),
        std::to_string(ds.right_table.size()),
        core::StrFormat("%.2f", data::GemDataset::MeanAttrs(ds.right_table)),
        std::to_string(ds.TotalLabeled()),
        core::StrFormat("%.0f%%", ds.default_rate * 100),
        std::to_string(split.labeled.size()),
        core::StrFormat("%.0f%%",
                        data::DigitFraction(ds.left_table) * 100),
    });
  }
  table.Print();
  return 0;
}
