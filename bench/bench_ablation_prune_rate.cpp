// Ablation (DESIGN.md): the dynamic-data-pruning rate e_r trades student
// training time against F1. The paper grid-searches e_r in
// {0.1, 0.2, 0.3, 0.4, 0.5}.

#include "bench_util.h"

int main() {
  using namespace promptem;
  const auto& lm = bench::SharedLM();
  baselines::RunOptions base = bench::DefaultRunOptions();

  bench::PrintHeader(
      "Ablation: dynamic-data-pruning rate e_r (time vs F1)",
      "e_r = fraction of D_L pruned at each pruning step.");

  const std::vector<double> rates = bench::FastMode()
                                        ? std::vector<double>{0.0, 0.3}
                                        : std::vector<double>{0.0, 0.1, 0.2,
                                                              0.3, 0.4, 0.5};
  const std::vector<data::BenchmarkKind> kinds = {
      data::BenchmarkKind::kSemiHomo, data::BenchmarkKind::kSemiTextC};

  std::vector<std::string> header = {"e_r"};
  for (auto kind : kinds) {
    std::string abbrev = data::GetBenchmarkInfo(kind).abbrev;
    header.push_back(abbrev + " F1");
    header.push_back(abbrev + " T.");
  }
  core::TablePrinter table(header);

  for (double rate : rates) {
    std::vector<std::string> row = {core::StrFormat("%.1f", rate)};
    for (auto kind : kinds) {
      data::GemDataset ds = data::GenerateBenchmark(kind, bench::kSeed);
      data::LowResourceSplit split = bench::DefaultSplit(ds);
      baselines::RunOptions options = base;
      options.prune_ratio = rate;
      baselines::Method method = rate == 0.0
                                     ? baselines::Method::kPromptEMNoDDP
                                     : baselines::Method::kPromptEM;
      baselines::MethodResult r =
          baselines::RunMethod(method, lm, kind, ds, split, options);
      row.push_back(core::StrFormat("%.1f", r.test.F1() * 100));
      row.push_back(core::FormatDuration(r.train_seconds));
    }
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[prune_rate] e_r=%.1f done\n", rate);
  }
  table.Print();
  return 0;
}
