// make_train_golden — records the training-parity fixture consumed by
// tests/train_test.cc. Run once against a known-good tree:
//
//   ./build/tools/make_train_golden tests/data/train_golden.json
//
// The fixture pins per-epoch losses and final F1 (bitwise) for the MLM
// pre-training loop, two supervised baselines, the full PromptEM pipeline
// (teacher + student + pruning), and two RunMethod paths, all at fixed
// seeds. The golden test recomputes the same runs and fails on any bit
// of drift, so training-runtime refactors cannot silently change
// behaviour.

#include <cstdio>
#include <string>

#include "../tests/train_golden_support.h"

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "tests/data/train_golden.json";
  const auto runs = promptem::golden::CaptureGoldenRuns();
  const std::string json = promptem::golden::GoldenRunsToJson(runs);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %zu runs to %s\n", runs.size(), path.c_str());
  for (const auto& run : runs) {
    std::printf("  %-24s epochs=%zu valid_f1=%.6f test_f1=%.6f\n",
                run.name.c_str(), run.epoch_losses.size(), run.valid_f1,
                run.test_f1);
  }
  return 0;
}
