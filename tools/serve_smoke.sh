#!/usr/bin/env bash
# End-to-end smoke of the serving stack: start promptem_serve on an
# ephemeral port, drive it with the closed-loop load generator, SIGTERM
# the daemon mid-life, and assert the whole drain contract — exit 0, a
# "drained:" summary, and a valid flushed embedding cache that a second
# daemon warm-starts from. CI runs this after the unit suites; it is the
# one place the real binaries, the real signal path, and the real TCP
# transport meet.
#
# Usage: tools/serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-build}"
serve_bin="${build_dir}/tools/promptem_serve"
loadgen_bin="${build_dir}/tools/promptem_loadgen"
for bin in "${serve_bin}" "${loadgen_bin}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "serve_smoke: missing ${bin} (build the 'tools' targets first)" >&2
    exit 1
  fi
done

scratch="$(mktemp -d)"
server_log="${scratch}/serve.log"
cache="${scratch}/scores.embcache"
server_pid=""
cleanup() {
  if [[ -n "${server_pid}" ]] && kill -0 "${server_pid}" 2>/dev/null; then
    kill -KILL "${server_pid}" 2>/dev/null || true
  fi
  rm -rf "${scratch}"
}
trap cleanup EXIT

# Sets the globals `server_pid` and `port` (no subshell: both must
# survive into the caller).
start_daemon() {
  "${serve_bin}" --synthetic 60 --matcher DeepMatcher --epochs 2 \
    --port 0 --lm tests/data/promptem_integration_lm \
    --embed-cache "${cache}" --flush-every 64 > "${server_log}" 2>&1 &
  server_pid=$!
  # The port line is printed (and flushed) once training finishes.
  port=""
  for _ in $(seq 1 600); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "${server_log}")"
    [[ -n "${port}" ]] && break
    if ! kill -0 "${server_pid}" 2>/dev/null; then
      echo "serve_smoke: daemon died during startup:" >&2
      cat "${server_log}" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "serve_smoke: daemon never reported its port:" >&2
    cat "${server_log}" >&2
    exit 1
  fi
}

echo "serve_smoke: cold daemon + load generator"
start_daemon
"${loadgen_bin}" --port "${port}" --clients 4 --requests 25 --pairs 8 \
  --seed 7

echo "serve_smoke: SIGTERM -> graceful drain"
kill -TERM "${server_pid}"
drain_rc=0
wait "${server_pid}" || drain_rc=$?
server_pid=""
if [[ "${drain_rc}" -ne 0 ]]; then
  echo "serve_smoke: daemon exited ${drain_rc} after SIGTERM (want 0):" >&2
  cat "${server_log}" >&2
  exit 1
fi
grep -q '^drained: ' "${server_log}" || {
  echo "serve_smoke: no drain summary in daemon output:" >&2
  cat "${server_log}" >&2
  exit 1
}
grep -q '^batching: ' "${server_log}" || {
  echo "serve_smoke: no batching summary in daemon output:" >&2
  cat "${server_log}" >&2
  exit 1
}
if [[ ! -s "${cache}" ]]; then
  echo "serve_smoke: SIGTERM drain left no flushed cache at ${cache}" >&2
  exit 1
fi
if [[ -e "${cache}.tmp" ]]; then
  echo "serve_smoke: flush left a stale temp file ${cache}.tmp" >&2
  exit 1
fi

echo "serve_smoke: warm restart from the flushed cache"
start_daemon
# A corrupt file would be rejected with a "rebuilding" warning; a valid
# one loads with a nonzero entry count.
grep -q '^embed cache: loaded [1-9]' "${server_log}" || {
  echo "serve_smoke: restarted daemon did not load the flushed cache:" >&2
  cat "${server_log}" >&2
  exit 1
}
"${loadgen_bin}" --port "${port}" --clients 2 --requests 10 --pairs 8 \
  --seed 7
kill -TERM "${server_pid}"
wait "${server_pid}" || {
  echo "serve_smoke: warm daemon drain failed:" >&2
  cat "${server_log}" >&2
  exit 1
}
server_pid=""
# Warm-started scoring must actually hit: the drain summary counts
# score-cache hits and the first cold run seeded these exact pairs.
grep -Eq '^drained: .*\([0-9]+ pairs scored, [1-9][0-9]* cache hits\)' \
  "${server_log}" || {
  echo "serve_smoke: warm daemon served no cache hits:" >&2
  cat "${server_log}" >&2
  exit 1
}

echo "serve_smoke: OK"
