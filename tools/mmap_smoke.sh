#!/usr/bin/env bash
# Constrained-memory smoke of the storage-backed blocking index: run the
# 1M-row synthetic blocking report under a heap ceiling sized so the
# in-RAM band tables cannot fit but the mmap-backed ones can. The RAM
# run must die (bad_alloc under the rlimit); the --index-dir run must
# finish and report its band bytes on disk with zero in RAM. This is
# the one place CI proves the mmap backend actually changes the memory
# envelope rather than just passing the same tests twice.
#
# The ceiling is RLIMIT_DATA (`ulimit -d`), not RLIMIT_AS (`ulimit -v`):
# since Linux 4.7 RLIMIT_DATA charges brk plus private anonymous
# mappings — i.e. the heap — but NOT file-backed shared mappings, so the
# mmap-attached band indexes stay free while the RAM backend's 800M+ of
# postings count. RLIMIT_AS would charge the file mappings too and
# defeat the point of the comparison.
#
# Usage: tools/mmap_smoke.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-build}"
cli="${build_dir}/tools/promptem_cli"
if [[ ! -x "${cli}" ]]; then
  echo "mmap_smoke: missing ${cli} (build the 'tools' targets first)" >&2
  exit 1
fi

rows="${MMAP_SMOKE_ROWS:-1000000}"
# Measured at 1M rows (nproc=1): both backends need ~1.8G of heap for
# the tables + signatures; the RAM backend adds ~830M of band postings
# on top (peak RSS 2.6G) while the mmap backend stages one band at a
# time and keeps the sealed images on disk. 2200M sits between the two
# with a few hundred MB of margin on each side.
limit_kb="${MMAP_SMOKE_LIMIT_KB:-$((2200 * 1024))}"

# glibc can reserve a 64M arena per contending thread; those private
# anonymous maps charge RLIMIT_DATA even when barely touched, so cap
# them to keep the margin about real heap demand, not reservations.
export MALLOC_ARENA_MAX=2

scratch="$(mktemp -d)"
trap 'rm -rf "${scratch}"' EXIT

run_limited() {
  local log="$1"
  shift
  # Subshell so the rlimit dies with the run; exec so the limit applies
  # to the CLI itself rather than an intermediate shell.
  (
    ulimit -S -d "${limit_kb}"
    exec "${cli}" "$@"
  ) >"${log}" 2>&1
}

echo "mmap_smoke: ${rows}-row blocking report under ulimit -d ${limit_kb}K"

ram_log="${scratch}/ram.log"
if run_limited "${ram_log}" --blocking-report --synthetic "${rows}" \
    --blocker minhash; then
  echo "mmap_smoke: FAIL — RAM-backed band tables survived the rlimit;" \
       "the limit no longer constrains anything" >&2
  tail -5 "${ram_log}" >&2
  exit 1
fi
echo "mmap_smoke: RAM backend died under the limit, as intended"

mmap_log="${scratch}/mmap.log"
if ! run_limited "${mmap_log}" --blocking-report --synthetic "${rows}" \
    --blocker minhash --index-dir "${scratch}/bands"; then
  echo "mmap_smoke: FAIL — mmap-backed run died under the same limit" >&2
  tail -20 "${mmap_log}" >&2
  exit 1
fi

# The run finishing is not enough: assert it really kept the postings
# on disk and still produced a usable candidate stream.
if ! grep -q "0B in RAM" "${mmap_log}"; then
  echo "mmap_smoke: FAIL — mmap run reports band bytes in RAM" >&2
  grep "minhash index" "${mmap_log}" >&2 || true
  exit 1
fi
if ! grep -q "on disk" "${mmap_log}"; then
  echo "mmap_smoke: FAIL — mmap run reports no on-disk index bytes" >&2
  exit 1
fi
if ! grep -Eq "^\| minhash" "${mmap_log}"; then
  echo "mmap_smoke: FAIL — no blocking-report row in mmap output" >&2
  cat "${mmap_log}" >&2
  exit 1
fi

echo "mmap_smoke: mmap backend passed under the same limit:"
grep -E "^\| (blocker|minhash)|peak RSS|minhash index" "${mmap_log}"
echo "mmap_smoke: OK"
