// promptem_serve — resident entity-matching daemon over the batched
// scoring engine.
//
// Loads the LM and dataset once, trains the configured matchers once,
// then serves match requests indefinitely: concurrent queries coalesce
// through a bounded admission queue into single ScoreBatch sweeps, so
// the per-request overhead (framing, parsing, queue wakeups, per-call
// engine walks) is amortized across every request in flight. Served
// scores are bitwise identical to the promptem_cli one-shot path.
//
// Usage:
//   promptem_serve (--synthetic N | --dataset NAME | --dir PATH)
//                  [--port P | --stdio] [--matcher M]... [options]
//   --port P          TCP on 127.0.0.1:P (0 = ephemeral; the bound port
//                     is printed as "listening on 127.0.0.1:PORT")
//   --stdio           JSONL on stdin/stdout (default)
//   --matcher M       matcher to train and serve; repeatable, the first
//                     becomes the default for requests naming none
//                     (default PromptEM)
//   --rate R          low-resource label rate in (0,1]
//   --labels N        exact labeled budget (overrides --rate)
//   --seed S          RNG seed (default 42)
//   --lm PREFIX       pre-trained LM cache prefix
//   --epochs N        training epochs for every matcher (default 12)
//   --embed-cache P   persistent warm-start store: served scores (and
//                     training-time pair embeddings) are loaded from P
//                     at startup and flushed back on drain, so a
//                     restarted daemon answers previously seen pairs
//                     without touching the model
//   --flush-every N   with --embed-cache: also flush every N inserts
//   --cache-backend B with --embed-cache: ram (default, flat file loaded
//                     whole at startup) or mmap (storage-backed hash
//                     index served in place — a restart over a
//                     beyond-RAM corpus warm-starts without ever
//                     materializing the full cache)
//   --queue-depth N   admission-queue capacity; beyond it requests are
//                     shed with status "overloaded" (default 256)
//   --max-batch N     max requests coalesced per scoring sweep
//                     (default 64)
//   --linger-us U     hold a sub-max batch open U microseconds for
//                     stragglers (default 0)
//
// Protocol: see src/serve/protocol.h. SIGINT/SIGTERM drain gracefully:
// admitted requests finish, the cache is flushed, exit status 0.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "baselines/matchers.h"
#include "core/signals.h"
#include "core/string_util.h"
#include "core/timer.h"
#include "data/benchmarks.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "lm/pretrained_lm.h"
#include "promptem/embed_cache.h"
#include "serve/server.h"
#include "serve/service.h"
#include "train/registry.h"

namespace {

using namespace promptem;

[[noreturn]] void BadOption(const std::string& flag, const char* value,
                            const char* expected) {
  std::fprintf(stderr, "bad value '%s' for %s (expected %s)\n", value,
               flag.c_str(), expected);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  core::IgnoreSigPipe();
  // Before any thread exists (training pools, daemon loops), confine
  // SIGINT/SIGTERM to the shutdown watcher installed below.
  core::BlockShutdownSignals();
  baselines::EnsureBaselineMatchersRegistered();

  std::string dataset_name;
  std::string dir;
  std::string lm_prefix = "promptem_shared_lm";
  std::vector<std::string> matcher_names;
  std::string embed_cache_path;
  std::string cache_backend = "ram";
  long long synthetic_rows = 0;
  long long port = -1;
  bool stdio_mode = false;
  double rate = -1.0;
  int labels = -1;
  uint64_t seed = 42;
  long long epochs = 0;  // 0 = RunOptions default
  long long flush_every = 0;
  long long queue_depth = 256;
  long long max_batch = 64;
  long long linger_us = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      dataset_name = next();
    } else if (arg == "--dir") {
      dir = next();
    } else if (arg == "--synthetic") {
      const char* value = next();
      if (!core::ParseInt64(value, &synthetic_rows) || synthetic_rows < 1) {
        BadOption(arg, value, "a positive row count");
      }
    } else if (arg == "--port") {
      const char* value = next();
      if (!core::ParseInt64(value, &port) || port < 0 || port > 65535) {
        BadOption(arg, value, "a port in [0, 65535]");
      }
    } else if (arg == "--stdio") {
      stdio_mode = true;
    } else if (arg == "--matcher") {
      matcher_names.push_back(next());
    } else if (arg == "--rate") {
      const char* value = next();
      if (!core::ParseFiniteDouble(value, &rate) || rate <= 0.0 ||
          rate > 1.0) {
        BadOption(arg, value, "a rate in (0,1]");
      }
    } else if (arg == "--labels") {
      const char* value = next();
      long long parsed = 0;
      if (!core::ParseInt64(value, &parsed) || parsed < 1 ||
          parsed > std::numeric_limits<int>::max()) {
        BadOption(arg, value, "a positive label budget");
      }
      labels = static_cast<int>(parsed);
    } else if (arg == "--seed") {
      const char* value = next();
      long long parsed = 0;
      if (!core::ParseInt64(value, &parsed) || parsed < 0) {
        BadOption(arg, value, "a non-negative integer");
      }
      seed = static_cast<uint64_t>(parsed);
    } else if (arg == "--lm") {
      lm_prefix = next();
    } else if (arg == "--epochs") {
      const char* value = next();
      if (!core::ParseInt64(value, &epochs) || epochs < 1 ||
          epochs > 10000) {
        BadOption(arg, value, "a positive epoch count");
      }
    } else if (arg == "--embed-cache") {
      embed_cache_path = next();
      if (embed_cache_path.empty()) BadOption(arg, "", "a non-empty path");
    } else if (arg == "--cache-backend") {
      cache_backend = next();
      if (cache_backend != "ram" && cache_backend != "mmap") {
        BadOption(arg, cache_backend.c_str(), "ram or mmap");
      }
    } else if (arg == "--flush-every") {
      const char* value = next();
      if (!core::ParseInt64(value, &flush_every) || flush_every < 0) {
        BadOption(arg, value, "a non-negative insert count");
      }
    } else if (arg == "--queue-depth") {
      const char* value = next();
      if (!core::ParseInt64(value, &queue_depth) || queue_depth < 1 ||
          queue_depth > (1 << 20)) {
        BadOption(arg, value, "a positive queue capacity");
      }
    } else if (arg == "--max-batch") {
      const char* value = next();
      if (!core::ParseInt64(value, &max_batch) || max_batch < 1 ||
          max_batch > (1 << 20)) {
        BadOption(arg, value, "a positive batch size");
      }
    } else if (arg == "--linger-us") {
      const char* value = next();
      if (!core::ParseInt64(value, &linger_us) || linger_us < 0 ||
          linger_us > 10'000'000) {
        BadOption(arg, value, "a linger in [0, 10^7] microseconds");
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  if (stdio_mode && port >= 0) {
    std::fprintf(stderr, "--stdio and --port are mutually exclusive\n");
    return 2;
  }
  if (port < 0) stdio_mode = true;  // no --port: JSONL on stdio (default)
  const int sources = (synthetic_rows > 0 ? 1 : 0) +
                      (!dataset_name.empty() ? 1 : 0) + (!dir.empty() ? 1 : 0);
  if (sources != 1) {
    std::fprintf(stderr,
                 "exactly one of --synthetic, --dataset, --dir is required\n");
    return 2;
  }
  if (flush_every > 0 && embed_cache_path.empty()) {
    std::fprintf(stderr, "--flush-every requires --embed-cache\n");
    return 2;
  }
  if (cache_backend == "mmap" && embed_cache_path.empty()) {
    std::fprintf(stderr, "--cache-backend mmap requires --embed-cache\n");
    return 2;
  }
  // In stdio mode stdout carries the JSONL response stream, so every
  // human-facing status line must stay off it.
  FILE* const status_out = stdio_mode ? stderr : stdout;

  if (matcher_names.empty()) matcher_names.push_back("PromptEM");
  for (const std::string& name : matcher_names) {
    if (!train::MatcherRegistry::Instance().Contains(name)) {
      std::fprintf(stderr, "unknown matcher '%s'; known matchers:\n",
                   name.c_str());
      for (const auto& known :
           train::MatcherRegistry::Instance().AllNames()) {
        std::fprintf(stderr, "  %s\n", known.c_str());
      }
      return 2;
    }
  }

  // Resolve the dataset exactly like promptem_cli (bitwise parity with
  // the one-shot path starts with identical inputs).
  data::GemDataset dataset;
  data::BenchmarkKind kind = data::BenchmarkKind::kSemiHomo;
  if (synthetic_rows > 0) {
    data::SyntheticTableOptions options;
    options.rows = static_cast<size_t>(synthetic_rows);
    options.seed = seed;
    data::SyntheticTables synthetic = data::GenerateSyntheticTables(options);
    dataset = synthetic.ToDataset(
        std::min<size_t>(static_cast<size_t>(synthetic_rows), 256),
        seed ^ 0xDA7AULL);
  } else if (!dataset_name.empty()) {
    bool found = false;
    for (auto candidate : data::AllBenchmarks()) {
      if (dataset_name == data::GetBenchmarkInfo(candidate).name) {
        kind = candidate;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown benchmark %s\n", dataset_name.c_str());
      return 2;
    }
    dataset = data::GenerateBenchmark(kind, seed);
  } else {
    auto loaded = data::LoadGemDataset(dir, "custom");
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", dir.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
    dataset.default_rate = 0.10;
  }

  // Warm-start store: previously served scores and training embeddings.
  std::shared_ptr<em::EmbeddingCache> embed_cache;
  if (!embed_cache_path.empty()) {
    embed_cache = std::make_shared<em::EmbeddingCache>();
    const core::Status loaded = embed_cache->Attach(
        embed_cache_path, cache_backend == "mmap"
                              ? em::EmbeddingCache::CacheBackend::kMmap
                              : em::EmbeddingCache::CacheBackend::kRam);
    if (loaded.ok()) {
      if (cache_backend == "mmap") {
        std::fprintf(status_out,
                     "embed cache: attached %zu entries in place from %s\n",
                     embed_cache->PersistedEntries(),
                     embed_cache_path.c_str());
      } else {
        std::fprintf(status_out,
                     "embed cache: loaded %zu entries from %s\n",
                     embed_cache->LiveEntries(), embed_cache_path.c_str());
      }
    } else if (loaded.code() == core::StatusCode::kNotFound) {
      std::fprintf(status_out, "embed cache: %s absent, starting empty\n",
                  embed_cache_path.c_str());
    } else {
      std::fprintf(stderr, "embed cache: rejected %s (%s); rebuilding\n",
                   embed_cache_path.c_str(), loaded.ToString().c_str());
    }
    em::SetGlobalEmbeddingCache(embed_cache);
    embed_cache->EnableAutosave(embed_cache_path,
                                static_cast<size_t>(flush_every));
  }

  auto lm = lm::GetOrCreateSharedLM(lm_prefix, seed);
  core::Rng rng(seed);
  data::LowResourceSplit split =
      labels > 0
          ? data::MakeCountSplit(dataset, labels, &rng)
          : data::MakeLowResourceSplit(
                dataset, rate > 0.0 ? rate : dataset.default_rate, &rng);

  train::RunOptions options;
  options.seed = seed;
  if (epochs > 0) {
    options.epochs = static_cast<int>(epochs);
    options.student_epochs = static_cast<int>(epochs);
  }

  serve::MatchService::Config service_config;
  service_config.kind = kind;
  service_config.default_matcher = matcher_names.front();
  service_config.matchers = matcher_names;
  service_config.score_cache = embed_cache;
  serve::MatchService service(lm.get(), std::move(dataset), std::move(split),
                              options, service_config);

  std::fprintf(status_out, "training %zu matcher(s) on %s...\n",
               matcher_names.size(),
              service.dataset().name.c_str());
  std::fflush(status_out);
  core::Timer train_timer;
  const core::Status trained = service.TrainAll();
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }
  std::fprintf(status_out,
               "trained in %s; tables %zu x %zu; default matcher %s\n",
              core::FormatDuration(train_timer.ElapsedSeconds()).c_str(),
              service.dataset().left_table.size(),
              service.dataset().right_table.size(),
              service.default_matcher().c_str());

  serve::ServeDaemon::Config daemon_config;
  daemon_config.port = stdio_mode ? -1 : static_cast<int>(port);
  daemon_config.queue.capacity = static_cast<size_t>(queue_depth);
  daemon_config.queue.max_batch = static_cast<size_t>(max_batch);
  daemon_config.queue.linger = std::chrono::microseconds(linger_us);
  serve::ServeDaemon daemon(&service, daemon_config);

  const core::Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!stdio_mode) {
    std::fprintf(status_out, "promptem_serve listening on 127.0.0.1:%d\n",
                 daemon.port());
  } else {
    std::fprintf(status_out, "promptem_serve reading JSONL from stdin\n");
  }
  std::fflush(status_out);

  // First SIGINT/SIGTERM begins the graceful drain; the watcher thread
  // only pokes the daemon, the main thread below does the actual work.
  core::InstallShutdownHandler([&daemon](int) { daemon.Shutdown(); });
  daemon.Wait();

  const serve::BatchQueue::Stats queue_stats = daemon.queue_stats();
  const serve::MatchService::Stats service_stats = service.stats();
  std::fprintf(
      status_out,
      "drained: %llu requests (%llu pairs scored, %llu cache hits), "
      "%llu shed, %llu expired, %llu rejected\n",
      static_cast<unsigned long long>(service_stats.requests),
      static_cast<unsigned long long>(service_stats.pairs_scored),
      static_cast<unsigned long long>(service_stats.score_hits),
      static_cast<unsigned long long>(queue_stats.shed),
      static_cast<unsigned long long>(service_stats.expired),
      static_cast<unsigned long long>(service_stats.rejected));
  if (queue_stats.batches > 0) {
    std::fprintf(status_out,
                 "batching: %llu requests in %llu sweeps (avg width %.2f)\n",
                static_cast<unsigned long long>(queue_stats.dequeued),
                static_cast<unsigned long long>(queue_stats.batches),
                static_cast<double>(queue_stats.dequeued) /
                    static_cast<double>(queue_stats.batches));
  }
  if (embed_cache != nullptr) {
    const core::Status saved = embed_cache->FlushNow();
    if (!saved.ok()) {
      std::fprintf(stderr, "embed cache: drain flush failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::fprintf(status_out, "embed cache: flushed %zu entries to %s\n",
                embed_cache->LiveEntries(), embed_cache_path.c_str());
  }
  return 0;
}
