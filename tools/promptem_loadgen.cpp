// promptem_loadgen — closed-loop load generator for promptem_serve.
//
// Each client thread keeps exactly one request in flight: connect,
// send, wait for the response, repeat. N clients therefore offer the
// daemon up to N concurrent requests, which is precisely what its
// admission queue coalesces into batched scoring sweeps — the reported
// "batch" field shows the coalescing the daemon actually achieved.
//
// Usage:
//   promptem_loadgen --port P [--clients N] [--requests N] [--pairs N]
//                    [--matcher M] [--deadline-ms D] [--seed S]
//
// Prints per-status counts, latency percentiles, and throughput. Exits
// nonzero on any transport/protocol error or if no request succeeded —
// shed ("overloaded") and expired responses are counted, not fatal:
// they are the daemon's documented degradation modes.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "core/signals.h"
#include "core/string_util.h"
#include "data/json.h"
#include "data/record.h"
#include "serve/protocol.h"

namespace {

using namespace promptem;
using Clock = std::chrono::steady_clock;

[[noreturn]] void BadOption(const std::string& flag, const char* value,
                            const char* expected) {
  std::fprintf(stderr, "bad value '%s' for %s (expected %s)\n", value,
               flag.c_str(), expected);
  std::exit(2);
}

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One frame round trip; false on any transport or parse failure.
bool RoundTrip(int fd, const serve::MatchRequest& request,
               serve::MatchResponse* response) {
  if (!serve::WriteFrame(fd, serve::SerializeRequest(request)).ok()) {
    return false;
  }
  std::string payload;
  if (!serve::ReadFrame(fd, &payload).ok()) return false;
  core::Result<serve::MatchResponse> parsed =
      serve::ParseMatchResponse(payload);
  if (!parsed.ok()) return false;
  *response = std::move(parsed).value();
  return true;
}

struct ClientTally {
  std::vector<double> latencies_us;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t expired = 0;
  uint64_t other = 0;
  uint64_t transport_errors = 0;
  uint64_t batch_sum = 0;  ///< coalesced width summed over ok responses
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t index = std::min(
      sorted->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted->size())));
  return (*sorted)[index];
}

}  // namespace

int main(int argc, char** argv) {
  core::IgnoreSigPipe();

  long long port = -1;
  long long clients = 4;
  long long requests = 100;
  long long pairs_per_request = 8;
  long long deadline_ms = 0;
  std::string matcher;
  uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      const char* value = next();
      if (!core::ParseInt64(value, &port) || port < 1 || port > 65535) {
        BadOption(arg, value, "a port in [1, 65535]");
      }
    } else if (arg == "--clients") {
      const char* value = next();
      if (!core::ParseInt64(value, &clients) || clients < 1 ||
          clients > 1024) {
        BadOption(arg, value, "a client count in [1, 1024]");
      }
    } else if (arg == "--requests") {
      const char* value = next();
      if (!core::ParseInt64(value, &requests) || requests < 1) {
        BadOption(arg, value, "a positive request count");
      }
    } else if (arg == "--pairs") {
      const char* value = next();
      if (!core::ParseInt64(value, &pairs_per_request) ||
          pairs_per_request < 1 ||
          static_cast<size_t>(pairs_per_request) >
              serve::kMaxPairsPerRequest) {
        BadOption(arg, value, "a pair count within the per-request cap");
      }
    } else if (arg == "--deadline-ms") {
      const char* value = next();
      if (!core::ParseInt64(value, &deadline_ms) || deadline_ms < 0) {
        BadOption(arg, value, "a non-negative deadline");
      }
    } else if (arg == "--matcher") {
      matcher = next();
    } else if (arg == "--seed") {
      long long parsed = 0;
      const char* value = next();
      if (!core::ParseInt64(value, &parsed) || parsed < 0) {
        BadOption(arg, value, "a non-negative integer");
      }
      seed = static_cast<uint64_t>(parsed);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (port < 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }

  // Table sizes from the daemon itself: the request space must match
  // whatever catalog it loaded.
  long long left_rows = 0;
  long long right_rows = 0;
  {
    const int fd = ConnectLoopback(static_cast<int>(port));
    if (fd < 0) {
      std::fprintf(stderr, "cannot connect to 127.0.0.1:%lld\n", port);
      return 1;
    }
    serve::MatchRequest info;
    info.id = 1;
    info.op = serve::RequestOp::kInfo;
    serve::MatchResponse response;
    const bool ok = RoundTrip(fd, info, &response);
    ::close(fd);
    if (!ok || response.status != serve::ResponseStatus::kOk) {
      std::fprintf(stderr, "info request failed\n");
      return 1;
    }
    core::Result<data::Value> parsed = data::ParseJson(response.info);
    if (!parsed.ok() || !parsed.value().is_object()) {
      std::fprintf(stderr, "unparseable info payload: %s\n",
                   response.info.c_str());
      return 1;
    }
    for (const auto& [key, value] : parsed.value().as_object()) {
      if (key == "left_rows" && value.is_number()) {
        left_rows = static_cast<long long>(value.as_number());
      } else if (key == "right_rows" && value.is_number()) {
        right_rows = static_cast<long long>(value.as_number());
      }
    }
    if (left_rows < 1 || right_rows < 1) {
      std::fprintf(stderr, "daemon reports empty tables\n");
      return 1;
    }
  }

  std::vector<ClientTally> tallies(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (long long c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientTally& tally = tallies[static_cast<size_t>(c)];
      const int fd = ConnectLoopback(static_cast<int>(port));
      if (fd < 0) {
        tally.transport_errors += static_cast<uint64_t>(requests);
        return;
      }
      core::Rng rng(seed + static_cast<uint64_t>(c) * 7919);
      for (long long r = 0; r < requests; ++r) {
        serve::MatchRequest request;
        request.id = static_cast<uint64_t>(c * requests + r + 2);
        request.matcher = matcher;
        request.deadline_ms = deadline_ms;
        request.pairs.resize(static_cast<size_t>(pairs_per_request));
        for (auto& pair : request.pairs) {
          pair.left_index =
              static_cast<int>(rng.NextU64(static_cast<uint64_t>(left_rows)));
          pair.right_index = static_cast<int>(
              rng.NextU64(static_cast<uint64_t>(right_rows)));
          pair.label = data::kUnlabeledLabel;
        }
        const auto sent = Clock::now();
        serve::MatchResponse response;
        if (!RoundTrip(fd, request, &response)) {
          ++tally.transport_errors;
          break;  // stream is unusable once a frame fails
        }
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - sent)
                .count();
        switch (response.status) {
          case serve::ResponseStatus::kOk:
            ++tally.ok;
            tally.batch_sum += response.batch_size;
            tally.latencies_us.push_back(us);
            break;
          case serve::ResponseStatus::kOverloaded:
            ++tally.overloaded;
            break;
          case serve::ResponseStatus::kDeadlineExceeded:
            ++tally.expired;
            break;
          default:
            ++tally.other;
            break;
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  ClientTally total;
  for (const ClientTally& tally : tallies) {
    total.ok += tally.ok;
    total.overloaded += tally.overloaded;
    total.expired += tally.expired;
    total.other += tally.other;
    total.transport_errors += tally.transport_errors;
    total.batch_sum += tally.batch_sum;
    total.latencies_us.insert(total.latencies_us.end(),
                              tally.latencies_us.begin(),
                              tally.latencies_us.end());
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());

  std::printf("clients %lld, requests/client %lld, pairs/request %lld\n",
              clients, requests, pairs_per_request);
  std::printf(
      "ok %llu, overloaded %llu, deadline_exceeded %llu, other %llu, "
      "transport errors %llu\n",
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.overloaded),
      static_cast<unsigned long long>(total.expired),
      static_cast<unsigned long long>(total.other),
      static_cast<unsigned long long>(total.transport_errors));
  if (total.ok > 0) {
    std::printf("latency us: p50 %.0f, p95 %.0f, p99 %.0f, max %.0f\n",
                Percentile(&total.latencies_us, 0.50),
                Percentile(&total.latencies_us, 0.95),
                Percentile(&total.latencies_us, 0.99),
                total.latencies_us.back());
    std::printf("throughput: %.1f req/s, %.1f pairs/s, avg batch %.2f\n",
                static_cast<double>(total.ok) / elapsed,
                static_cast<double>(total.ok) *
                    static_cast<double>(pairs_per_request) / elapsed,
                static_cast<double>(total.batch_sum) /
                    static_cast<double>(total.ok));
  }
  if (total.transport_errors > 0 || total.other > 0 || total.ok == 0) {
    return 1;
  }
  return 0;
}
