#!/usr/bin/env bash
# Runs the full check matrix: the plain Release test suite, the
# ASan-labeled suite (which includes the fault-injection sweeps), and the
# TSan-labeled suite, each in its own build directory.
#
# Usage: tools/run_checks.sh [extra ctest flags...]
#
# Build directories: build-checks (Release), build-asan, build-tsan.
# Existing directories are reused; delete them for a from-scratch run.
# Extra flags (e.g. -R Checkpoint) are passed to every ctest invocation.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc)"

run_suite() {
  local build_dir="$1"
  local label="$2"
  shift 2
  echo "=== ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@" >/dev/null
  cmake --build "${build_dir}" -j "${jobs}" >/dev/null
  if [[ -n "${label}" ]]; then
    ctest --test-dir "${build_dir}" --output-on-failure -L "${label}" \
          -j "${jobs}" "${extra_flags[@]}"
  else
    ctest --test-dir "${build_dir}" --output-on-failure \
          -j "${jobs}" "${extra_flags[@]}"
  fi
}

extra_flags=("$@")

# 1. The whole suite under a plain Release build.
run_suite build-checks "" -DCMAKE_BUILD_TYPE=Release

# 2. The memory-safety set (execution engine, fused attention, fault
#    injection) under AddressSanitizer.
run_suite build-asan asan -DPROMPTEM_SANITIZE=address

# 3. The concurrency set (pool determinism, fused attention) under
#    ThreadSanitizer.
run_suite build-tsan tsan -DPROMPTEM_SANITIZE=thread

echo "run_checks.sh: all suites passed"
