// promptem_cli — run any registered matcher on a built-in benchmark or a
// user dataset directory from the command line.
//
// Usage:
//   promptem_cli --list-matchers
//   promptem_cli --dataset SEMI-REL [--matcher PromptEM] [--rate 0.10]
//                [--labels N] [--seed 42] [--lm PREFIX]
//                [--run-log run.jsonl]
//   promptem_cli --dir path/to/dataset [--name my-data] ...
//   promptem_cli --dataset SEMI-REL --export out_dir      # dump to files
//
// Matcher dispatch goes through train::MatcherRegistry, so --list-matchers
// and the unknown-name diagnostics are derived from the registrations in
// src/baselines/matchers.cc rather than a hand-maintained switch.
//
// Dataset directories follow src/data/io.h's layout (left.csv|jsonl|txt,
// right.*, pairs_{train,valid,test}.csv).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "baselines/matchers.h"
#include "core/table_printer.h"
#include "core/timer.h"
#include "data/benchmarks.h"
#include "data/io.h"
#include "lm/pretrained_lm.h"
#include "promptem/scoring.h"
#include "tensor/kernels.h"
#include "train/observer.h"
#include "train/registry.h"

namespace {

using namespace promptem;

void PrintUsage() {
  std::puts(
      "promptem_cli --list | --list-matchers\n"
      "promptem_cli (--dataset NAME | --dir PATH) [options]\n"
      "  --matcher M     matcher to run (default PromptEM);\n"
      "                  see --list-matchers (--method is a legacy alias)\n"
      "  --rate R        low-resource label rate in (0,1] (default: the\n"
      "                  benchmark's Table-1 rate, 0.10 for --dir)\n"
      "  --labels N      exact labeled budget (overrides --rate)\n"
      "  --seed S        RNG seed (default 42)\n"
      "  --lm PREFIX     pre-trained LM cache prefix\n"
      "                  (default promptem_shared_lm)\n"
      "  --run-log PATH  append one JSON record per training epoch to PATH\n"
      "  --quantize Q    eval-path quantization: none (default) or int8\n"
      "                  (training always runs f32)\n"
      "  --export DIR    write the dataset to DIR and exit\n"
      "promptem_cli --kernel-info\n"
      "  print detected ISA, active kernel variant, and quantization mode\n"
      "  (PROMPTEM_FORCE_SCALAR=1 pins the portable kernels)");
}

/// The dispatch report the bench context stamps cross-check against:
/// which GEMM path this process would actually run.
void PrintKernelInfo() {
  namespace kernels = tensor::kernels;
  std::printf("cpu avx2+fma:    %s\n",
              kernels::CpuSupportsAvx2() ? "yes" : "no");
  std::printf("forced scalar:   %s (PROMPTEM_FORCE_SCALAR)\n",
              kernels::ScalarForced() ? "yes" : "no");
  std::printf("kernel variant:  %s\n",
              kernels::KernelVariantName(kernels::ActiveKernelVariant()));
  std::printf("eval quantize:   %s\n",
              em::GetEvalQuantization() ==
                      tensor::quant::EvalQuantMode::kInt8
                  ? "int8"
                  : "f32");
}

std::optional<data::BenchmarkKind> KindByName(const std::string& name) {
  for (auto kind : data::AllBenchmarks()) {
    if (name == data::GetBenchmarkInfo(kind).name) return kind;
  }
  return std::nullopt;
}

[[noreturn]] void UnknownMatcher(const std::string& name) {
  std::fprintf(stderr, "unknown matcher '%s'; known matchers:\n",
               name.c_str());
  for (const auto& known : train::MatcherRegistry::Instance().AllNames()) {
    std::fprintf(stderr, "  %s\n", known.c_str());
  }
  std::exit(2);
}

// Strict numeric option parsing: a value like "0.1x" or "" would
// otherwise be silently read as 0 by atof/atoi and then abort deep inside
// the split helpers; bad flags must instead exit 2 with a message.

bool ParseDoubleArg(const char* text, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseIntArg(const char* text, long long* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = v;
  return true;
}

[[noreturn]] void BadOption(const std::string& flag, const char* value,
                            const char* expected) {
  std::fprintf(stderr, "bad value '%s' for %s (expected %s)\n", value,
               flag.c_str(), expected);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  baselines::EnsureBaselineMatchersRegistered();

  std::string dataset_name;
  std::string dir;
  std::string matcher_name = "PromptEM";
  std::string lm_prefix = "promptem_shared_lm";
  std::string export_dir;
  std::string run_log_path;
  std::string custom_name = "custom";
  std::string quantize = "none";
  double rate = -1.0;
  int labels = -1;
  uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      std::puts("benchmarks:");
      for (auto kind : data::AllBenchmarks()) {
        std::printf("  %s\n", data::GetBenchmarkInfo(kind).name);
      }
      std::puts("matchers:");
      for (const auto& name :
           train::MatcherRegistry::Instance().ListedNames()) {
        std::printf("  %s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--kernel-info") {
      PrintKernelInfo();
      return 0;
    } else if (arg == "--quantize") {
      quantize = next();
      if (quantize != "none" && quantize != "int8") {
        BadOption(arg, quantize.c_str(), "none or int8");
      }
    } else if (arg == "--list-matchers") {
      for (const auto& name :
           train::MatcherRegistry::Instance().ListedNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--dataset") {
      dataset_name = next();
    } else if (arg == "--dir") {
      dir = next();
    } else if (arg == "--name") {
      custom_name = next();
    } else if (arg == "--matcher" || arg == "--method") {
      matcher_name = next();
    } else if (arg == "--run-log") {
      run_log_path = next();
    } else if (arg == "--rate") {
      const char* value = next();
      if (!ParseDoubleArg(value, &rate) || rate <= 0.0 || rate > 1.0) {
        BadOption(arg, value, "a rate in (0,1]");
      }
    } else if (arg == "--labels") {
      const char* value = next();
      long long parsed = 0;
      if (!ParseIntArg(value, &parsed) || parsed < 1 ||
          parsed > std::numeric_limits<int>::max()) {
        BadOption(arg, value, "a positive label budget");
      }
      labels = static_cast<int>(parsed);
    } else if (arg == "--seed") {
      const char* value = next();
      long long parsed = 0;
      if (!ParseIntArg(value, &parsed) || parsed < 0) {
        BadOption(arg, value, "a non-negative integer");
      }
      seed = static_cast<uint64_t>(parsed);
    } else if (arg == "--lm") {
      lm_prefix = next();
    } else if (arg == "--export") {
      export_dir = next();
    } else {
      PrintUsage();
      return 2;
    }
  }

  if (dataset_name.empty() && dir.empty()) {
    PrintUsage();
    return 2;
  }
  if (!dataset_name.empty() && !dir.empty()) {
    std::fprintf(stderr, "--dataset and --dir are mutually exclusive\n");
    return 2;
  }

  // Resolve the dataset.
  data::GemDataset dataset;
  data::BenchmarkKind kind = data::BenchmarkKind::kSemiHomo;  // DADER source
  if (!dataset_name.empty()) {
    auto resolved = KindByName(dataset_name);
    if (!resolved) {
      std::fprintf(stderr, "unknown benchmark %s (see --list)\n",
                   dataset_name.c_str());
      return 2;
    }
    kind = *resolved;
    dataset = data::GenerateBenchmark(kind, seed);
  } else {
    auto loaded = data::LoadGemDataset(dir, custom_name);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", dir.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
    dataset.default_rate = 0.10;
  }

  if (!export_dir.empty()) {
    core::Status st = data::SaveGemDataset(dataset, export_dir);
    if (!st.ok()) {
      std::fprintf(stderr, "export failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu + %zu records, %d labeled pairs)\n",
                export_dir.c_str(), dataset.left_table.size(),
                dataset.right_table.size(), dataset.TotalLabeled());
    return 0;
  }

  std::unique_ptr<train::Matcher> matcher =
      train::MatcherRegistry::Instance().Create(matcher_name);
  if (matcher == nullptr) UnknownMatcher(matcher_name);

  std::unique_ptr<train::JsonlRunLogger> run_logger;
  if (!run_log_path.empty()) {
    run_logger = std::make_unique<train::JsonlRunLogger>(run_log_path);
    if (!run_logger->ok()) {
      std::fprintf(stderr, "cannot open run log %s\n", run_log_path.c_str());
      return 1;
    }
  }

  auto lm = lm::GetOrCreateSharedLM(lm_prefix, seed);
  core::Rng rng(seed);
  data::LowResourceSplit split =
      labels > 0
          ? data::MakeCountSplit(dataset, labels, &rng)
          : data::MakeLowResourceSplit(
                dataset, rate > 0.0 ? rate : dataset.default_rate, &rng);

  if (quantize == "int8") {
    em::SetEvalQuantization(tensor::quant::EvalQuantMode::kInt8);
  }

  std::printf("%s on %s: %zu labeled / %zu unlabeled / %zu valid / %zu "
              "test pairs\n",
              matcher_name.c_str(), dataset.name.c_str(),
              split.labeled.size(), split.unlabeled.size(),
              split.valid.size(), split.test.size());
  std::printf("kernels: %s, eval quantize: %s\n",
              tensor::kernels::KernelVariantName(
                  tensor::kernels::ActiveKernelVariant()),
              quantize.c_str());

  train::MatcherContext ctx;
  ctx.lm = lm.get();
  ctx.kind = kind;
  ctx.dataset = &dataset;
  ctx.split = &split;
  ctx.options.seed = seed;
  ctx.observer = run_logger.get();
  const train::MatcherResult result = train::RunMatcher(matcher.get(), ctx);

  std::printf("valid: %s\n", result.valid.ToString().c_str());
  std::printf("test:  %s\n", result.test.ToString().c_str());
  std::printf("train time %s, peak tracked memory %s\n",
              core::FormatDuration(result.train_seconds).c_str(),
              core::FormatBytes(result.peak_memory_bytes).c_str());
  if (run_logger != nullptr) {
    std::printf("run log appended to %s\n", run_logger->path().c_str());
  }
  return 0;
}
