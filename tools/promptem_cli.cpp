// promptem_cli — run any registered matcher on a built-in benchmark or a
// user dataset directory from the command line.
//
// Usage:
//   promptem_cli --list-matchers
//   promptem_cli --dataset SEMI-REL [--matcher PromptEM] [--rate 0.10]
//                [--labels N] [--seed 42] [--lm PREFIX]
//                [--run-log run.jsonl]
//   promptem_cli --dir path/to/dataset [--name my-data] ...
//   promptem_cli --dataset SEMI-REL --export out_dir      # dump to files
//
// Matcher dispatch goes through train::MatcherRegistry, so --list-matchers
// and the unknown-name diagnostics are derived from the registrations in
// src/baselines/matchers.cc rather than a hand-maintained switch.
//
// Dataset directories follow src/data/io.h's layout (left.csv|jsonl|txt,
// right.*, pairs_{train,valid,test}.csv).

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/matchers.h"
#include "core/mem_tracker.h"
#include "core/signals.h"
#include "core/string_util.h"
#include "core/table_printer.h"
#include "core/timer.h"
#include "data/benchmarks.h"
#include "data/blocking.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "lm/pretrained_lm.h"
#include "pipeline/incremental.h"
#include "pipeline/match_pipeline.h"
#include "promptem/embed_cache.h"
#include "promptem/pseudo_labels.h"
#include "promptem/scoring.h"
#include "tensor/kernels.h"
#include "train/observer.h"
#include "train/registry.h"

namespace {

using namespace promptem;

void PrintUsage() {
  std::puts(
      "promptem_cli --list | --list-matchers\n"
      "promptem_cli (--dataset NAME | --dir PATH) [options]\n"
      "  --matcher M     matcher to run (default PromptEM);\n"
      "                  see --list-matchers (--method is a legacy alias)\n"
      "  --rate R        low-resource label rate in (0,1] (default: the\n"
      "                  benchmark's Table-1 rate, 0.10 for --dir)\n"
      "  --labels N      exact labeled budget (overrides --rate)\n"
      "  --seed S        RNG seed (default 42)\n"
      "  --lm PREFIX     pre-trained LM cache prefix\n"
      "                  (default promptem_shared_lm)\n"
      "  --run-log PATH  append one JSON record per training epoch to PATH\n"
      "  --quantize Q    eval-path quantization: none (default) or int8\n"
      "                  (training always runs f32)\n"
      "  --pseudo P      pseudo-label selection strategy: uncertainty\n"
      "                  (default, the paper's choice), confidence, or\n"
      "                  clustering (k-means on pair embeddings)\n"
      "  --embed-cache PATH  persist pair embeddings (the clustering\n"
      "                  pseudo-label strategy's EmbedBatch output) to\n"
      "                  PATH: loaded at startup when present (a corrupt\n"
      "                  file is rejected and rebuilt), saved at exit,\n"
      "                  and flushed on SIGINT/SIGTERM\n"
      "  --flush-every N with --embed-cache: additionally flush the cache\n"
      "                  every N inserts (crash durability; default 0 =\n"
      "                  only at exit and on signals)\n"
      "  --cache-backend B  backing store for --embed-cache: ram (default,\n"
      "                  flat file loaded whole) or mmap (storage-backed\n"
      "                  hash index read in place — the cache never has to\n"
      "                  fit in memory; a legacy ram file at the same path\n"
      "                  is migrated at the next flush)\n"
      "  --export DIR    write the dataset to DIR and exit\n"
      "promptem_cli --match-tables [--synthetic N | --left STEM --right STEM]\n"
      "             [--blocker B] [--block-top-k K] [--chunk-size C]\n"
      "             [--threshold T] [--top-matches M] [training options]\n"
      "  streaming table match: block -> chunked score -> incremental\n"
      "  metrics, memory bounded by the chunk size\n"
      "  --synthetic N   seeded N-row synthetic workload with known gold\n"
      "                  (also supplies the training pairs)\n"
      "  --left STEM     load tables from STEM.csv|jsonl|txt (no gold\n"
      "  --right STEM    pairs); train on --dataset or --dir\n"
      "  with --dataset/--dir alone, matches the dataset's own tables\n"
      "  --blocker B     overlap (default), minhash, or allpairs\n"
      "  --block-top-k K candidates kept per left record (default 10)\n"
      "  --index-dir DIR minhash only: build the band tables as\n"
      "                  mmap-backed hash indexes under DIR instead of in\n"
      "                  RAM (identical candidate stream, bounded memory)\n"
      "  --chunk-size C  candidates scored per chunk (default 4096)\n"
      "  --threshold T   declare a match when P(yes) >= T (default 0.5)\n"
      "  --top-matches M strongest matches to print (default 10)\n"
      "  --incremental N after the full match, touch N records and\n"
      "                  re-match incrementally: only candidate pairs of\n"
      "                  changed records are re-scored, the rest come\n"
      "                  from the score cache (requires --match-tables)\n"
      "promptem_cli --blocking-report (--synthetic N | --dataset NAME |\n"
      "             --dir PATH) [--blocker B] [--block-top-k K]\n"
      "  stream the blocker against the gold matches and report pair\n"
      "  completeness / reduction ratio plus a memory section: process\n"
      "  peak RSS and, for minhash, per-band index bytes and bucket-cap\n"
      "  eviction counts (no training involved)\n"
      "promptem_cli --kernel-info\n"
      "  print detected ISA, active kernel variant, and quantization mode\n"
      "  (PROMPTEM_FORCE_SCALAR=1 pins the portable kernels)");
}

/// The dispatch report the bench context stamps cross-check against:
/// which GEMM path this process would actually run.
void PrintKernelInfo() {
  namespace kernels = tensor::kernels;
  std::printf("cpu avx2+fma:    %s\n",
              kernels::CpuSupportsAvx2() ? "yes" : "no");
  std::printf("forced scalar:   %s (PROMPTEM_FORCE_SCALAR)\n",
              kernels::ScalarForced() ? "yes" : "no");
  std::printf("kernel variant:  %s\n",
              kernels::KernelVariantName(kernels::ActiveKernelVariant()));
  std::printf("eval quantize:   %s\n",
              em::GetEvalQuantization() ==
                      tensor::quant::EvalQuantMode::kInt8
                  ? "int8"
                  : "f32");
}

std::optional<data::BenchmarkKind> KindByName(const std::string& name) {
  for (auto kind : data::AllBenchmarks()) {
    if (name == data::GetBenchmarkInfo(kind).name) return kind;
  }
  return std::nullopt;
}

[[noreturn]] void UnknownMatcher(const std::string& name) {
  std::fprintf(stderr, "unknown matcher '%s'; known matchers:\n",
               name.c_str());
  for (const auto& known : train::MatcherRegistry::Instance().AllNames()) {
    std::fprintf(stderr, "  %s\n", known.c_str());
  }
  std::exit(2);
}

// Strict numeric option parsing: a value like "0.1x" or "" would
// otherwise be silently read as 0 by atof/atoi and then abort deep inside
// the split helpers; bad flags must instead exit 2 with a message. The
// core parsers additionally reject "nan"/"inf", which strtod accepts and
// which then slip through range checks like `rate <= 0.0 || rate > 1.0`
// (every comparison against NaN is false).

bool ParseDoubleArg(const char* text, double* out) {
  return core::ParseFiniteDouble(text, out);
}

bool ParseIntArg(const char* text, long long* out) {
  return core::ParseInt64(text, out);
}

[[noreturn]] void BadOption(const std::string& flag, const char* value,
                            const char* expected) {
  std::fprintf(stderr, "bad value '%s' for %s (expected %s)\n", value,
               flag.c_str(), expected);
  std::exit(2);
}

/// Builds the requested blocker over `tables`. The returned blocker keeps
/// pointers into `tables` (MinHash), which must outlive it. A non-empty
/// `index_dir` puts the MinHash band tables on disk (mmap-backed hash
/// indexes under that directory); the candidate stream is bitwise
/// identical either way, only the backing store moves.
std::unique_ptr<data::Blocker> MakeBlocker(const std::string& name,
                                           const data::GemDataset& tables,
                                           int top_k,
                                           const std::string& index_dir) {
  if (name == "allpairs") {
    return std::make_unique<data::AllPairsBlocker>(tables.left_table.size(),
                                                   tables.right_table.size());
  }
  if (name == "overlap") {
    data::OverlapBlocker::Config config;
    config.top_k = top_k;
    return std::make_unique<data::OverlapBlocker>(tables.left_table,
                                                  tables.right_table, config);
  }
  data::MinHashBlocker::Config config;
  config.top_k = top_k;
  if (!index_dir.empty()) {
    config.index_backend = data::MinHashBlocker::IndexBackend::kHashIndexMmap;
    config.index_dir = index_dir;
  }
  return std::make_unique<data::MinHashBlocker>(tables.left_table,
                                                tables.right_table, config);
}

uint64_t PackPair(int left, int right) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(left)) << 32) |
         static_cast<uint32_t>(right);
}

}  // namespace

int main(int argc, char** argv) {
  core::IgnoreSigPipe();
  baselines::EnsureBaselineMatchersRegistered();

  std::string dataset_name;
  std::string dir;
  std::string matcher_name = "PromptEM";
  std::string lm_prefix = "promptem_shared_lm";
  std::string export_dir;
  std::string run_log_path;
  std::string custom_name = "custom";
  std::string quantize = "none";
  double rate = -1.0;
  int labels = -1;
  uint64_t seed = 42;
  bool match_tables = false;
  bool blocking_report = false;
  std::string blocker_name = "overlap";
  std::string left_stem;
  std::string right_stem;
  long long synthetic_rows = 0;
  int block_top_k = 10;
  long long chunk_size = 4096;
  double threshold = 0.5;
  long long top_matches = 10;
  long long incremental_rows = 0;
  long long flush_every = 0;
  std::string embed_cache_path;
  std::string cache_backend = "ram";
  std::string index_dir;
  std::string pseudo_strategy = "uncertainty";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      std::puts("benchmarks:");
      for (auto kind : data::AllBenchmarks()) {
        std::printf("  %s\n", data::GetBenchmarkInfo(kind).name);
      }
      std::puts("matchers:");
      for (const auto& name :
           train::MatcherRegistry::Instance().ListedNames()) {
        std::printf("  %s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--kernel-info") {
      PrintKernelInfo();
      return 0;
    } else if (arg == "--quantize") {
      quantize = next();
      if (quantize != "none" && quantize != "int8") {
        BadOption(arg, quantize.c_str(), "none or int8");
      }
    } else if (arg == "--list-matchers") {
      for (const auto& name :
           train::MatcherRegistry::Instance().ListedNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--dataset") {
      dataset_name = next();
    } else if (arg == "--dir") {
      dir = next();
    } else if (arg == "--name") {
      custom_name = next();
    } else if (arg == "--matcher" || arg == "--method") {
      matcher_name = next();
    } else if (arg == "--run-log") {
      run_log_path = next();
    } else if (arg == "--rate") {
      const char* value = next();
      if (!ParseDoubleArg(value, &rate) || rate <= 0.0 || rate > 1.0) {
        BadOption(arg, value, "a rate in (0,1]");
      }
    } else if (arg == "--labels") {
      const char* value = next();
      long long parsed = 0;
      if (!ParseIntArg(value, &parsed) || parsed < 1 ||
          parsed > std::numeric_limits<int>::max()) {
        BadOption(arg, value, "a positive label budget");
      }
      labels = static_cast<int>(parsed);
    } else if (arg == "--seed") {
      const char* value = next();
      long long parsed = 0;
      if (!ParseIntArg(value, &parsed) || parsed < 0) {
        BadOption(arg, value, "a non-negative integer");
      }
      seed = static_cast<uint64_t>(parsed);
    } else if (arg == "--lm") {
      lm_prefix = next();
    } else if (arg == "--export") {
      export_dir = next();
    } else if (arg == "--match-tables") {
      match_tables = true;
    } else if (arg == "--blocking-report") {
      blocking_report = true;
    } else if (arg == "--blocker") {
      blocker_name = next();
      if (blocker_name != "overlap" && blocker_name != "minhash" &&
          blocker_name != "allpairs") {
        BadOption(arg, blocker_name.c_str(), "overlap, minhash, or allpairs");
      }
    } else if (arg == "--left") {
      left_stem = next();
    } else if (arg == "--right") {
      right_stem = next();
    } else if (arg == "--synthetic") {
      const char* value = next();
      if (!ParseIntArg(value, &synthetic_rows) || synthetic_rows < 1) {
        BadOption(arg, value, "a positive row count");
      }
    } else if (arg == "--block-top-k") {
      const char* value = next();
      long long parsed = 0;
      if (!ParseIntArg(value, &parsed) || parsed < 1 ||
          parsed > std::numeric_limits<int>::max()) {
        BadOption(arg, value, "a positive candidate count");
      }
      block_top_k = static_cast<int>(parsed);
    } else if (arg == "--chunk-size") {
      const char* value = next();
      if (!ParseIntArg(value, &chunk_size) || chunk_size < 1) {
        BadOption(arg, value, "a positive chunk size");
      }
    } else if (arg == "--threshold") {
      const char* value = next();
      if (!ParseDoubleArg(value, &threshold) || threshold < 0.0 ||
          threshold > 1.0) {
        BadOption(arg, value, "a probability in [0,1]");
      }
    } else if (arg == "--top-matches") {
      const char* value = next();
      if (!ParseIntArg(value, &top_matches) || top_matches < 0) {
        BadOption(arg, value, "a non-negative count");
      }
    } else if (arg == "--incremental") {
      const char* value = next();
      if (!ParseIntArg(value, &incremental_rows) || incremental_rows < 1) {
        BadOption(arg, value, "a positive record count");
      }
    } else if (arg == "--embed-cache") {
      embed_cache_path = next();
      if (embed_cache_path.empty()) {
        BadOption(arg, "", "a non-empty path");
      }
    } else if (arg == "--flush-every") {
      const char* value = next();
      if (!ParseIntArg(value, &flush_every) || flush_every < 0) {
        BadOption(arg, value, "a non-negative insert count");
      }
    } else if (arg == "--cache-backend") {
      cache_backend = next();
      if (cache_backend != "ram" && cache_backend != "mmap") {
        BadOption(arg, cache_backend.c_str(), "ram or mmap");
      }
    } else if (arg == "--index-dir") {
      index_dir = next();
      if (index_dir.empty()) {
        BadOption(arg, "", "a non-empty directory path");
      }
    } else if (arg == "--pseudo") {
      pseudo_strategy = next();
      em::PseudoLabelStrategy parsed;
      if (!em::ParsePseudoLabelStrategy(pseudo_strategy, &parsed)) {
        BadOption(arg, pseudo_strategy.c_str(),
                  "uncertainty, confidence, or clustering");
      }
    } else {
      PrintUsage();
      return 2;
    }
  }

  if (incremental_rows > 0 && !match_tables) {
    std::fprintf(stderr, "--incremental requires --match-tables\n");
    return 2;
  }
  if (flush_every > 0 && embed_cache_path.empty()) {
    std::fprintf(stderr, "--flush-every requires --embed-cache\n");
    return 2;
  }
  if (cache_backend == "mmap" && embed_cache_path.empty()) {
    std::fprintf(stderr, "--cache-backend mmap requires --embed-cache\n");
    return 2;
  }
  if (!index_dir.empty() && blocker_name != "minhash") {
    std::fprintf(stderr,
                 "--index-dir applies to the minhash blocker only "
                 "(--blocker minhash)\n");
    return 2;
  }

  const bool pipeline_mode = match_tables || blocking_report;
  const bool have_user_tables = !left_stem.empty() || !right_stem.empty();
  if (have_user_tables && (left_stem.empty() || right_stem.empty())) {
    std::fprintf(stderr, "--left and --right must be given together\n");
    return 2;
  }
  if (have_user_tables && !match_tables) {
    std::fprintf(stderr, "--left/--right require --match-tables\n");
    return 2;
  }
  if (have_user_tables && synthetic_rows > 0) {
    std::fprintf(stderr,
                 "--left/--right and --synthetic are mutually exclusive\n");
    return 2;
  }
  if (blocking_report && have_user_tables) {
    std::fprintf(stderr,
                 "--blocking-report needs gold matches; --left/--right "
                 "tables carry none (use --synthetic or a dataset)\n");
    return 2;
  }
  if (!dataset_name.empty() && !dir.empty()) {
    std::fprintf(stderr, "--dataset and --dir are mutually exclusive\n");
    return 2;
  }
  if (synthetic_rows > 0 && (!dataset_name.empty() || !dir.empty())) {
    std::fprintf(stderr,
                 "--synthetic and --dataset/--dir are mutually exclusive\n");
    return 2;
  }
  if (dataset_name.empty() && dir.empty() && synthetic_rows == 0) {
    PrintUsage();
    return 2;
  }
  if (have_user_tables && dataset_name.empty() && dir.empty()) {
    std::fprintf(stderr,
                 "--left/--right tables have no training pairs; supply "
                 "training data with --dataset or --dir\n");
    return 2;
  }

  // A Ctrl-C mid-run used to lose every warm embedding (the cache was
  // only saved at the end of a successful run). Install the watcher
  // before any pool thread exists — later threads inherit the blocked
  // mask, so the signal can only surface in the watcher, which flushes
  // through the same atomic tmp+rename path and exits with the
  // conventional signal status. Without --embed-cache nothing needs
  // flushing and the default die-on-signal disposition stays.
  if (!embed_cache_path.empty()) {
    core::InstallShutdownHandler([](int signum) {
      auto cache = em::GetGlobalEmbeddingCache();
      if (cache != nullptr) {
        const core::Status saved = cache->FlushNow();
        if (!saved.ok()) {
          std::fprintf(stderr, "embed cache: signal flush failed: %s\n",
                       saved.ToString().c_str());
        }
      }
      std::_Exit(128 + signum);
    });
  }

  // Resolve the (training) dataset.
  data::GemDataset dataset;
  data::BenchmarkKind kind = data::BenchmarkKind::kSemiHomo;  // DADER source
  data::SyntheticTables synthetic;  // gold mapping when --synthetic
  if (synthetic_rows > 0) {
    data::SyntheticTableOptions options;
    options.rows = static_cast<size_t>(synthetic_rows);
    options.seed = seed;
    synthetic = data::GenerateSyntheticTables(options);
    // The tables move into the dataset; the gold mapping stays behind in
    // `synthetic` for the pipeline's oracle and the blocking report.
    dataset = synthetic.ToDataset(
        std::min<size_t>(static_cast<size_t>(synthetic_rows), 256),
        seed ^ 0xDA7AULL);
  } else if (!dataset_name.empty()) {
    auto resolved = KindByName(dataset_name);
    if (!resolved) {
      std::fprintf(stderr, "unknown benchmark %s (see --list)\n",
                   dataset_name.c_str());
      return 2;
    }
    kind = *resolved;
    dataset = data::GenerateBenchmark(kind, seed);
  } else {
    auto loaded = data::LoadGemDataset(dir, custom_name);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", dir.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
    dataset.default_rate = 0.10;
  }

  // Resolve the tables the pipeline blocks over, the gold oracle, and the
  // gold match list.
  data::GemDataset user_tables;
  const data::GemDataset* match_ds = &dataset;
  std::function<int(int, int)> gold_label;
  std::vector<data::PairExample> gold_matches;
  if (pipeline_mode) {
    if (have_user_tables) {
      auto left_loaded = data::LoadTableAuto(left_stem);
      auto right_loaded = data::LoadTableAuto(right_stem);
      if (!left_loaded.ok() || !right_loaded.ok()) {
        const auto& bad = !left_loaded.ok() ? left_loaded : right_loaded;
        std::fprintf(stderr, "failed to load tables: %s\n",
                     bad.status().ToString().c_str());
        return 1;
      }
      user_tables = em::MakeTableDataset("tables",
                                         std::move(left_loaded).value(),
                                         std::move(right_loaded).value());
      match_ds = &user_tables;
    } else if (synthetic_rows > 0) {
      gold_label = [&synthetic](int l, int r) {
        return synthetic.GoldLabel(l, r);
      };
      gold_matches = synthetic.GoldMatches();
    } else {
      // Dataset mode: the labeled pairs are the only gold we have; every
      // other candidate the blocker proposes stays kUnlabeledLabel and is
      // skipped by the incremental metrics.
      auto known = std::make_shared<std::unordered_map<uint64_t, int>>();
      for (const auto* pairs : {&dataset.train, &dataset.valid,
                                &dataset.test}) {
        for (const auto& p : *pairs) {
          (*known)[PackPair(p.left_index, p.right_index)] = p.label;
          if (p.label == 1) gold_matches.push_back(p);
        }
      }
      gold_label = [known](int l, int r) {
        const auto it = known->find(PackPair(l, r));
        return it == known->end() ? data::kUnlabeledLabel : it->second;
      };
    }
  }

  if (blocking_report) {
    auto blocker = MakeBlocker(blocker_name, *match_ds, block_top_k,
                               index_dir);
    const data::BlockingQuality quality = data::EvaluateBlockingStream(
        blocker.get(), gold_matches, static_cast<size_t>(chunk_size));
    core::TablePrinter table({"blocker", "left", "right", "candidates",
                              "completeness", "reduction"});
    table.AddRow({blocker->Name(), std::to_string(blocker->left_size()),
                  std::to_string(blocker->right_size()),
                  std::to_string(quality.num_candidates),
                  core::TablePrinter::Pct(quality.pair_completeness),
                  core::TablePrinter::Pct(quality.reduction_ratio)});
    table.Print();
    // Memory section: the process high-water mark is the number that
    // makes the in-RAM vs mmap trade visible — the mmap backend keeps
    // band bytes in the page cache (evictable, charged to the file),
    // so its RSS peak stays flat where the RAM backend's grows with
    // the corpus.
    std::printf("memory: peak RSS %s\n",
                core::FormatBytes(core::MemTracker::ProcessPeakRssBytes())
                    .c_str());
    if (const auto* minhash =
            dynamic_cast<const data::MinHashBlocker*>(blocker.get())) {
      const data::MinHashBlocker::IndexStats stats = minhash->index_stats();
      uint64_t min_band = 0;
      uint64_t max_band = 0;
      for (uint64_t bytes : stats.band_bytes) {
        min_band = min_band == 0 ? bytes : std::min(min_band, bytes);
        max_band = std::max(max_band, bytes);
      }
      std::printf(
          "minhash index: %zu bands (%s..%s per band), %s in RAM, %s on "
          "disk\n",
          stats.band_bytes.size(),
          core::FormatBytes(static_cast<size_t>(min_band)).c_str(),
          core::FormatBytes(static_cast<size_t>(max_band)).c_str(),
          core::FormatBytes(static_cast<size_t>(stats.ram_bytes)).c_str(),
          core::FormatBytes(static_cast<size_t>(stats.file_bytes)).c_str());
      std::printf(
          "minhash bucket cap: %llu buckets over cap, %llu probes "
          "skipped\n",
          static_cast<unsigned long long>(stats.buckets_over_cap),
          static_cast<unsigned long long>(stats.capped_probes));
    }
    if (!match_tables) return 0;
  }

  if (!export_dir.empty()) {
    core::Status st = data::SaveGemDataset(dataset, export_dir);
    if (!st.ok()) {
      std::fprintf(stderr, "export failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu + %zu records, %d labeled pairs)\n",
                export_dir.c_str(), dataset.left_table.size(),
                dataset.right_table.size(), dataset.TotalLabeled());
    return 0;
  }

  std::unique_ptr<train::Matcher> matcher =
      train::MatcherRegistry::Instance().Create(matcher_name);
  if (matcher == nullptr) UnknownMatcher(matcher_name);
  if (have_user_tables && matcher_name.rfind("TDmatch", 0) == 0) {
    // The TDmatch family predicts from a graph built over its training
    // tables; candidate indices into different tables would be garbage.
    std::fprintf(stderr,
                 "%s cannot match separate --left/--right tables (its "
                 "graph is bound to the training tables)\n",
                 matcher_name.c_str());
    return 2;
  }

  std::unique_ptr<train::JsonlRunLogger> run_logger;
  if (!run_log_path.empty()) {
    run_logger = std::make_unique<train::JsonlRunLogger>(run_log_path);
    if (!run_logger->ok()) {
      std::fprintf(stderr, "cannot open run log %s\n", run_log_path.c_str());
      return 1;
    }
  }

  // The persistent embedding cache, shared by every in-process consumer
  // (the clustering pseudo-label strategy's EmbedBatch sweeps). Missing
  // file: start empty. Corrupt file: reject it loudly and rebuild from
  // scratch — a cache is always safe to discard, never safe to trust.
  std::shared_ptr<em::EmbeddingCache> embed_cache;
  if (!embed_cache_path.empty()) {
    embed_cache = std::make_shared<em::EmbeddingCache>();
    const core::Status loaded = embed_cache->Attach(
        embed_cache_path, cache_backend == "mmap"
                              ? em::EmbeddingCache::CacheBackend::kMmap
                              : em::EmbeddingCache::CacheBackend::kRam);
    if (loaded.ok()) {
      if (cache_backend == "mmap") {
        std::printf("embed cache: attached %zu embeddings in place from "
                    "%s\n",
                    embed_cache->PersistedEntries(),
                    embed_cache_path.c_str());
      } else {
        std::printf("embed cache: loaded %zu embeddings from %s\n",
                    embed_cache->LiveEntries(), embed_cache_path.c_str());
      }
    } else if (loaded.code() == core::StatusCode::kNotFound) {
      std::printf("embed cache: %s absent, starting empty\n",
                  embed_cache_path.c_str());
    } else {
      std::fprintf(stderr, "embed cache: rejected %s (%s); rebuilding\n",
                   embed_cache_path.c_str(), loaded.ToString().c_str());
    }
    // EnableAutosave before publishing: the signal watcher installed at
    // startup flushes whatever the global pointer holds.
    embed_cache->EnableAutosave(embed_cache_path,
                                static_cast<size_t>(flush_every));
    em::SetGlobalEmbeddingCache(embed_cache);
  }

  auto lm = lm::GetOrCreateSharedLM(lm_prefix, seed);
  core::Rng rng(seed);
  data::LowResourceSplit split =
      labels > 0
          ? data::MakeCountSplit(dataset, labels, &rng)
          : data::MakeLowResourceSplit(
                dataset, rate > 0.0 ? rate : dataset.default_rate, &rng);

  if (quantize == "int8") {
    em::SetEvalQuantization(tensor::quant::EvalQuantMode::kInt8);
  }

  std::printf("%s on %s: %zu labeled / %zu unlabeled / %zu valid / %zu "
              "test pairs\n",
              matcher_name.c_str(), dataset.name.c_str(),
              split.labeled.size(), split.unlabeled.size(),
              split.valid.size(), split.test.size());
  std::printf("kernels: %s, eval quantize: %s\n",
              tensor::kernels::KernelVariantName(
                  tensor::kernels::ActiveKernelVariant()),
              quantize.c_str());

  train::MatcherContext ctx;
  ctx.lm = lm.get();
  ctx.kind = kind;
  ctx.dataset = &dataset;
  ctx.split = &split;
  ctx.options.seed = seed;
  ctx.options.pseudo_strategy = pseudo_strategy;
  ctx.observer = run_logger.get();
  const train::MatcherResult result = train::RunMatcher(matcher.get(), ctx);

  std::printf("valid: %s\n", result.valid.ToString().c_str());
  std::printf("test:  %s\n", result.test.ToString().c_str());
  std::printf("train time %s, peak tracked memory %s\n",
              core::FormatDuration(result.train_seconds).c_str(),
              core::FormatBytes(result.peak_memory_bytes).c_str());
  if (run_logger != nullptr) {
    std::printf("run log appended to %s\n", run_logger->path().c_str());
  }

  if (match_tables) {
    auto blocker = MakeBlocker(blocker_name, *match_ds, block_top_k,
                               index_dir);
    em::MatchPipelineConfig config;
    config.chunk_size = static_cast<size_t>(chunk_size);
    config.threshold = static_cast<float>(threshold);
    config.top_k_matches = static_cast<size_t>(top_matches);
    config.gold_label = gold_label;
    train::MatcherContext match_ctx = ctx;
    match_ctx.dataset = match_ds;
    const em::MatchPipelineResult r =
        em::RunTableMatch(matcher.get(), match_ctx, blocker.get(), config);
    std::printf(
        "table match [%s]: %zu x %zu rows -> %zu candidates in %zu "
        "chunks (max chunk %zu)\n",
        blocker->Name(), blocker->left_size(), blocker->right_size(),
        r.candidates, r.chunks, r.max_chunk);
    std::printf("matches (P(yes) >= %.2f): %zu\n", threshold, r.matches);
    if (r.labeled > 0) {
      std::printf("gold-labeled candidates: %zu of %zu, %s\n", r.labeled,
                  r.candidates, r.metrics.ToString().c_str());
    }
    if (!r.top_matches.empty()) {
      core::TablePrinter table({"left", "right", "P(yes)"});
      for (const auto& m : r.top_matches) {
        char prob[32];
        std::snprintf(prob, sizeof(prob), "%.4f", m.pos_prob);
        table.AddRow({std::to_string(m.left_index),
                      std::to_string(m.right_index), prob});
      }
      table.Print();
    }

    if (incremental_rows > 0) {
      // Incremental re-matching demo: full match once (fills the score
      // cache), then touch N right records and re-match — only their
      // candidate pairs are re-scored.
      train::MatcherContext inc_ctx = match_ctx;
      em::IncrementalMatcher::Config inc_config;
      inc_config.pipeline = config;
      train::Matcher* matcher_ptr = matcher.get();
      em::IncrementalMatcher inc(
          *match_ds,
          [&inc_ctx, matcher_ptr](const data::GemDataset& ds) {
            inc_ctx.dataset = &ds;
            return em::ChunkScoreFn(
                [matcher_ptr,
                 &inc_ctx](const std::vector<data::PairExample>& chunk) {
                  return matcher_ptr->ScoreProbs(inc_ctx, chunk);
                });
          },
          [&blocker_name, block_top_k, &index_dir](
              const data::GemDataset& ds) {
            return MakeBlocker(blocker_name, ds, block_top_k, index_dir);
          },
          inc_config);
      inc.FullMatch();
      const size_t right_rows = inc.dataset().right_table.size();
      em::RecordDelta delta;
      for (long long n = 0; n < incremental_rows; ++n) {
        em::RecordUpsert up;
        up.left = false;
        up.index = static_cast<int>(static_cast<size_t>(n) % right_rows);
        up.record =
            inc.dataset().right_table[static_cast<size_t>(up.index)];
        delta.upserts.push_back(std::move(up));
      }
      const em::MatchPipelineResult ir = inc.ApplyDelta(delta);
      const em::DeltaStats& stats = inc.last_stats();
      std::printf(
          "incremental re-match: %zu changed records -> %zu candidates, "
          "%zu re-scored, %zu reused from cache (%zu matches)\n",
          stats.changed_records, stats.candidates, stats.rescored,
          stats.reused, ir.matches);
    }
  }

  if (embed_cache != nullptr) {
    const core::Status saved = embed_cache->Save(embed_cache_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "embed cache: save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    if (cache_backend == "mmap") {
      std::printf("embed cache: sealed %zu embeddings into %s\n",
                  embed_cache->PersistedEntries(), embed_cache_path.c_str());
    } else {
      std::printf("embed cache: saved %zu embeddings to %s\n",
                  embed_cache->LiveEntries(), embed_cache_path.c_str());
    }
  }
  return 0;
}
