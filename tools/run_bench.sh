#!/usr/bin/env bash
# Re-records BENCH_micro.json from a Release build.
#
# Usage: tools/run_bench.sh [build-dir] [extra benchmark flags...]
#
# Configures (or reuses) a Release build directory — build-bench by
# default — verifies it really is a plain Release configuration (no
# sanitizer), builds bench_micro_kernels, and runs it from the repo root
# so it rewrites the checked-in BENCH_micro.json. The binary itself also
# refuses to record from a non-Release build, so a mis-configured cache
# fails twice. Extra flags (e.g. --benchmark_filter=Attention) are passed
# through; a --benchmark_out flag would redirect the report and skip the
# re-record, so don't pass one when refreshing BENCH_micro.json.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-build-bench}"
if [[ $# -gt 0 ]]; then shift; fi

cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

cache="${build_dir}/CMakeCache.txt"
build_type="$(grep -E '^CMAKE_BUILD_TYPE:' "${cache}" | cut -d= -f2-)"
sanitize="$(grep -E '^PROMPTEM_SANITIZE:' "${cache}" | cut -d= -f2- || true)"
if [[ "${build_type}" != "Release" ]]; then
  echo "run_bench.sh: ${build_dir} is configured as '${build_type}'," \
       "not Release; refusing to record. Use a fresh build dir." >&2
  exit 1
fi
if [[ -n "${sanitize}" ]]; then
  echo "run_bench.sh: ${build_dir} is a sanitizer build" \
       "(PROMPTEM_SANITIZE=${sanitize}); refusing to record." >&2
  exit 1
fi

cmake --build "${build_dir}" -j "$(nproc)" --target bench_micro_kernels

# Run from the repo root: without an explicit --benchmark_out the binary
# writes BENCH_micro.json into the working directory.
"${build_dir}/bench/bench_micro_kernels" "$@"
echo "run_bench.sh: recorded $(pwd)/BENCH_micro.json"

# The record-cache benchmarks are part of the recorded baseline: warn
# when a --benchmark_filter pass left them out of the refreshed file.
for bench in BM_EncodeChunkParallel BM_EmbedCacheHitMiss \
             BM_SelfTrainCached BM_IncrementalMatch \
             BM_ServeP50 BM_ServeP99 BM_OneShotScore BM_ServeThroughput \
             BM_BlockScoreMatch_Mmap; do
  if ! grep -q "\"${bench}" BENCH_micro.json; then
    echo "run_bench.sh: warning: ${bench} missing from BENCH_micro.json" \
         "(filtered run? re-run without --benchmark_filter to record the" \
         "full baseline)" >&2
  fi
done
