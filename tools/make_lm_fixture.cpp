// Regenerates the small committed LM fixture used by execution_test:
//
//   ./build/tools/make_lm_fixture [out_prefix]
//
// Default prefix is tests/data/promptem_integration_lm (run from the repo
// root). Pre-training is fully seeded, so the artifacts are reproducible;
// only regenerate them when the checkpoint format or the transformer
// architecture changes, and commit the result.

#include <cstdio>
#include <string>
#include <vector>

#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"

int main(int argc, char** argv) {
  using namespace promptem;
  const std::string prefix =
      argc > 1 ? argv[1] : "tests/data/promptem_integration_lm";

  data::BenchmarkGenOptions small;
  small.size_scale = 0.3;
  std::vector<data::GemDataset> datasets = {
      data::GenerateBenchmark(data::BenchmarkKind::kRelHeter, 11, small),
      data::GenerateBenchmark(data::BenchmarkKind::kSemiRel, 11, small),
  };
  lm::Corpus corpus = lm::BuildCorpus(datasets, 11);

  nn::TransformerConfig config;
  config.dim = 32;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_dim = 64;
  config.max_seq_len = 96;

  lm::MlmOptions options;
  options.epochs = 2;
  options.max_seq_len = 96;
  options.always_mask_words = {"matched",    "similar",   "relevant",
                               "mismatched", "different", "irrelevant"};

  core::Rng rng(11);
  auto lm = lm::PretrainedLM::Pretrain(corpus, config, options,
                                       lm::RequiredPromptTokens(), &rng);
  core::Status st = lm->Save(prefix);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s.{vocab,config,ckpt} (vocab %d, final mlm loss %.3f)\n",
              prefix.c_str(), lm->vocab().size(),
              lm->pretrain_losses().back());
  return 0;
}
