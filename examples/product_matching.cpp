// SEMI-TEXT product matching: semi-structured product specs (left)
// against long noisy marketing descriptions (right). Demonstrates the
// Appendix-F TF-IDF summarizer on long entries and compares PromptEM
// with the fine-tuning baseline on the same split.

#include <cstdio>

#include "baselines/common.h"
#include "data/benchmarks.h"
#include "data/serializer.h"
#include "lm/pretrained_lm.h"
#include "promptem/promptem.h"
#include "text/tokenizer.h"

int main() {
  using namespace promptem;
  const uint64_t kSeed = 42;

  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiTextC, kSeed);
  auto lm = lm::GetOrCreateSharedLM("promptem_shared_lm", kSeed);

  // The right table is long text; the encoder summarizes it by TF-IDF.
  em::PairEncoder encoder = em::MakePairEncoder(*lm, ds);
  const data::Record& long_text = ds.right_table.front();
  auto raw_tokens =
      text::WordTokenize(data::SerializeRecord(long_text));
  auto kept = encoder.EncodeRecord(long_text);
  std::printf("long product description: %zu tokens -> %zu after TF-IDF "
              "summarization (budget %d)\n\n",
              raw_tokens.size(), kept.size(), encoder.per_side_budget());

  core::Rng rng(kSeed);
  data::LowResourceSplit split =
      data::MakeLowResourceSplit(ds, ds.default_rate, &rng);

  baselines::RunOptions options;
  auto prompt = baselines::RunMethod(baselines::Method::kPromptEM, *lm,
                                     data::BenchmarkKind::kSemiTextC, ds,
                                     split, options);
  auto finetune = baselines::RunMethod(baselines::Method::kBert, *lm,
                                       data::BenchmarkKind::kSemiTextC, ds,
                                       split, options);
  std::printf("PromptEM    : %s (%.1fs)\n", prompt.test.ToString().c_str(),
              prompt.train_seconds);
  std::printf("fine-tuning : %s (%.1fs)\n",
              finetune.test.ToString().c_str(), finetune.train_seconds);
  std::printf("\nPrompt-tuning reuses the pre-trained MLM head, which is "
              "what keeps it ahead when only %zu labels exist.\n",
              split.labeled.size());
  return 0;
}
