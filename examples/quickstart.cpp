// Quickstart: the smallest end-to-end PromptEM run.
//
// 1. Generate a synthetic GEM benchmark (semi-structured vs relational).
// 2. Pre-train (or load the cached) shared language model.
// 3. Build a low-resource split and run PromptEM.
// 4. Print precision / recall / F1 on the held-out test pairs.

#include <cstdio>

#include "baselines/common.h"
#include "core/timer.h"
#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"
#include "promptem/promptem.h"

int main() {
  using namespace promptem;

  const uint64_t kSeed = 42;
  core::Timer timer;

  // A GEM task: movie records stored semi-structured on the left and
  // relational on the right.
  data::GemDataset dataset =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiRel, kSeed);
  std::printf("dataset %s: %zu left rows, %zu right rows, %d labeled pairs\n",
              dataset.name.c_str(), dataset.left_table.size(),
              dataset.right_table.size(), dataset.TotalLabeled());

  // The shared pre-trained LM (cached on disk after the first run).
  auto lm = lm::GetOrCreateSharedLM("promptem_shared_lm", kSeed);
  std::printf("LM ready: vocab=%d dim=%d layers=%d (%.1fs)\n",
              lm->vocab().size(), lm->config().dim, lm->config().num_layers,
              timer.ElapsedSeconds());

  // Low-resource: only `default_rate` of the labeled pairs are visible.
  core::Rng rng(kSeed);
  data::LowResourceSplit split =
      data::MakeLowResourceSplit(dataset, dataset.default_rate, &rng);
  std::printf("low-resource split: %zu labeled, %zu unlabeled\n",
              split.labeled.size(), split.unlabeled.size());

  // PromptEM with default config: continuous T2 template, designed label
  // words, uncertainty-aware self-training, dynamic data pruning.
  em::PromptEMConfig config = baselines::MakePromptEmConfig(
      baselines::Method::kPromptEM, baselines::RunOptions{});
  em::PromptEM promptem(lm.get(), config);
  em::PromptEMResult result = promptem.Run(dataset, split);

  std::printf("test:  %s\n", result.test.ToString().c_str());
  std::printf("valid: %s\n", result.valid.ToString().c_str());
  std::printf("pseudo-labels: %zu selected (TPR=%.2f TNR=%.2f), %d pruned\n",
              result.stats.pseudo.indices.size(), result.stats.pseudo.tpr,
              result.stats.pseudo.tnr, result.stats.pruned_total);
  std::printf("total time: %.1fs\n", timer.ElapsedSeconds());
  return 0;
}
