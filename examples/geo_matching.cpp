// GEO-HETER geospatial matching: venues with split latitude/longitude
// attributes (left) against a provider with a combined, coarser
// "position" attribute (right). Demonstrates heterogeneous-schema GEM and
// how candidate difficulty relates to coordinate precision.

#include <cstdio>

#include "baselines/common.h"
#include "data/benchmarks.h"
#include "data/serializer.h"
#include "lm/pretrained_lm.h"
#include "promptem/promptem.h"

int main() {
  using namespace promptem;
  const uint64_t kSeed = 42;

  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kGeoHeter, kSeed);
  std::printf("Dataset %s — heterogeneous geo schemas:\n", ds.name.c_str());
  std::printf("  left:  %.180s\n",
              data::SerializeRecord(ds.left_table[0]).c_str());
  std::printf("  right: %.180s\n\n",
              data::SerializeRecord(ds.right_table[0]).c_str());
  std::printf("Note the split latitude/longitude vs the combined coarser "
              "position attribute\n(the paper's GEO-HETER construction, "
              "Appendix E).\n\n");

  auto lm = lm::GetOrCreateSharedLM("promptem_shared_lm", kSeed);
  core::Rng rng(kSeed);
  data::LowResourceSplit split =
      data::MakeLowResourceSplit(ds, ds.default_rate, &rng);

  baselines::RunOptions options;
  auto result = baselines::RunMethod(baselines::Method::kPromptEM, *lm,
                                     data::BenchmarkKind::kGeoHeter, ds,
                                     split, options);
  std::printf("PromptEM on %s: %s\n", ds.name.c_str(),
              result.test.ToString().c_str());

  // Unsupervised comparison: the graph matcher cannot bridge the
  // precision gap between the coordinate encodings.
  auto tdmatch = baselines::RunMethod(baselines::Method::kTdMatch, *lm,
                                      data::BenchmarkKind::kGeoHeter, ds,
                                      split, options);
  std::printf("TDmatch  on %s: %s\n", ds.name.c_str(),
              tdmatch.test.ToString().c_str());
  return 0;
}
