// A step-by-step walk through Lightweight Self-Training (Algorithm 1):
// train the teacher, inspect MC-Dropout uncertainties, select
// pseudo-labels (Eq. 2), and watch dynamic data pruning (Eq. 3) shrink
// the student's training set.

#include <algorithm>
#include <cstdio>

#include "data/benchmarks.h"
#include "lm/pretrained_lm.h"
#include "promptem/promptem.h"

int main() {
  using namespace promptem;
  const uint64_t kSeed = 42;

  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiTextC, kSeed);
  auto lm = lm::GetOrCreateSharedLM("promptem_shared_lm", kSeed);
  core::Rng rng(kSeed);
  data::LowResourceSplit split =
      data::MakeLowResourceSplit(ds, ds.default_rate, &rng);
  em::PairEncoder encoder = em::MakePairEncoder(*lm, ds);
  auto labeled = encoder.EncodeAll(ds, split.labeled);
  auto unlabeled = encoder.EncodeAll(ds, split.unlabeled);
  auto valid = encoder.EncodeAll(ds, split.valid);

  // Step 1: teacher on D_L (Algorithm 1, lines 2-4).
  std::printf("=== Step 1: train teacher on %zu labels ===\n",
              labeled.size());
  core::Rng model_rng(kSeed);
  em::PromptModel teacher(*lm, em::PromptModelConfig{}, &model_rng);
  em::TrainOptions train_options;
  train_options.epochs = 10;
  em::TrainResult tr = em::TrainClassifier(&teacher, labeled, valid,
                                           train_options);
  std::printf("teacher valid: %s (best epoch %d)\n\n",
              tr.best_valid.ToString().c_str(), tr.best_epoch);

  // Step 2: MC-Dropout uncertainty on the unlabeled pool (§4.2).
  std::printf("=== Step 2: MC-Dropout uncertainty (10 passes) ===\n");
  core::Rng mc_rng(kSeed + 1);
  std::vector<em::McEstimate> estimates;
  for (const auto& x : unlabeled) {
    estimates.push_back(em::McDropoutEstimate(&teacher, x, 10, &mc_rng));
  }
  std::vector<size_t> by_uncertainty(estimates.size());
  for (size_t i = 0; i < estimates.size(); ++i) by_uncertainty[i] = i;
  std::sort(by_uncertainty.begin(), by_uncertainty.end(),
            [&](size_t a, size_t b) {
              return estimates[a].uncertainty < estimates[b].uncertainty;
            });
  std::printf("least uncertain samples (selected as pseudo-labels):\n");
  for (size_t k = 0; k < 3 && k < by_uncertainty.size(); ++k) {
    const size_t i = by_uncertainty[k];
    std::printf("  #%zu: u=%.4f  P(match)=%.2f  pseudo=%d  (gold=%d)\n", i,
                estimates[i].uncertainty, estimates[i].mean_pos_prob,
                estimates[i].pseudo_label, unlabeled[i].label);
  }
  std::printf("most uncertain samples (rejected):\n");
  for (size_t k = 0; k < 3 && k < by_uncertainty.size(); ++k) {
    const size_t i = by_uncertainty[by_uncertainty.size() - 1 - k];
    std::printf("  #%zu: u=%.4f  P(match)=%.2f  (gold=%d)\n", i,
                estimates[i].uncertainty, estimates[i].mean_pos_prob,
                unlabeled[i].label);
  }

  // Step 3: Eq. 2 selection with u_r = 0.1.
  core::Rng sel_rng(kSeed + 2);
  em::PseudoLabelResult selection = em::SelectPseudoLabels(
      &teacher, unlabeled, em::PseudoLabelStrategy::kUncertainty, 0.1, 10,
      &sel_rng);
  std::printf("\n=== Step 3: selected %zu pseudo-labels "
              "(TPR=%.2f TNR=%.2f) ===\n\n",
              selection.indices.size(), selection.tpr, selection.tnr);

  // Step 4: full Algorithm 1 with DDP, comparing the with/without-DDP
  // student workloads.
  std::printf("=== Step 4: student with dynamic data pruning ===\n");
  core::Rng factory_rng(kSeed + 3);
  em::ModelFactory factory =
      [&factory_rng, &lm]() -> std::unique_ptr<em::PairClassifier> {
    return std::make_unique<em::PromptModel>(*lm, em::PromptModelConfig{},
                                             &factory_rng);
  };
  em::SelfTrainingConfig st;
  st.teacher_options.epochs = 10;
  st.student_options.epochs = 12;
  st.prune_every = 2;
  em::SelfTrainingStats stats;
  auto model = em::RunSelfTraining(factory, labeled, unlabeled, valid, st,
                                   &stats);
  auto test = encoder.EncodeAll(ds, split.test);
  std::printf("pruned %d samples across the student phase; student saw %lld "
              "per-sample steps\n",
              stats.pruned_total,
              static_cast<long long>(stats.student_samples));
  std::printf("final test metrics: %s\n",
              em::Evaluate(model.get(), test).ToString().c_str());
  return 0;
}
