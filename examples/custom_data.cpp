// Running PromptEM on YOUR data: this example writes a small dataset
// directory in the interchange format (CSV + JSONL + pair files), loads
// it back the way a user would load real data, runs blocking to build
// candidates, and matches with PromptEM.

#include <cstdio>
#include <filesystem>

#include "baselines/common.h"
#include "data/benchmarks.h"
#include "data/blocking.h"
#include "data/io.h"
#include "lm/pretrained_lm.h"
#include "promptem/promptem.h"

int main() {
  using namespace promptem;
  namespace fs = std::filesystem;
  const uint64_t kSeed = 42;
  const std::string dir = "custom_dataset_demo";

  // 1. Produce a dataset directory (stand-in for your own files):
  //    left.jsonl (semi-structured), right.csv (relational),
  //    pairs_{train,valid,test}.csv.
  fs::remove_all(dir);
  data::GemDataset source =
      data::GenerateBenchmark(data::BenchmarkKind::kSemiRel, kSeed);
  core::Status st = data::SaveGemDataset(source, dir);
  PROMPTEM_CHECK_MSG(st.ok(), st.ToString().c_str());
  std::printf("wrote %s/: left.jsonl right.csv pairs_*.csv\n\n",
              dir.c_str());

  // 2. Load it as a user would.
  auto loaded = data::LoadGemDataset(dir, "my-movies");
  PROMPTEM_CHECK_MSG(loaded.ok(), loaded.status().ToString().c_str());
  data::GemDataset ds = std::move(loaded).value();
  ds.default_rate = 0.10;
  std::printf("loaded %zu semi-structured + %zu relational records, "
              "%d labeled pairs\n",
              ds.left_table.size(), ds.right_table.size(),
              ds.TotalLabeled());

  // 3. Blocking: the step before matching in the classic EM workflow.
  data::OverlapBlocker blocker(ds.left_table, ds.right_table);
  data::OverlapBlocker::Config block_config;
  block_config.top_k = 5;
  auto candidates = blocker.GenerateCandidates(block_config);
  std::vector<data::PairExample> gold;
  for (const auto& p : ds.train) {
    if (p.label == 1) gold.push_back(p);
  }
  auto quality = data::EvaluateBlocking(candidates, gold,
                                        ds.left_table.size(),
                                        ds.right_table.size());
  std::printf("blocking: %zu candidates, pair completeness %.2f, "
              "reduction ratio %.3f\n\n",
              candidates.size(), quality.pair_completeness,
              quality.reduction_ratio);

  // 4. Match with PromptEM under the low-resource setting.
  auto lm = lm::GetOrCreateSharedLM("promptem_shared_lm", kSeed);
  core::Rng rng(kSeed);
  data::LowResourceSplit split =
      data::MakeLowResourceSplit(ds, ds.default_rate, &rng);
  em::PromptEM promptem(
      lm.get(), baselines::MakePromptEmConfig(baselines::Method::kPromptEM,
                                              baselines::RunOptions{}));
  em::PromptEMResult result = promptem.Run(ds, split);
  std::printf("PromptEM on the loaded dataset: %s\n",
              result.test.ToString().c_str());

  fs::remove_all(dir);
  return 0;
}
