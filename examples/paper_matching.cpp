// The paper's motivating scenario (Figure 1): matching relational paper
// metadata against free-text abstracts (REL-TEXT). Shows the §2.2
// serialization of both sides, a templated prompt input, and PromptEM's
// predictions on a few test pairs.

#include <cstdio>

#include "baselines/common.h"
#include "data/benchmarks.h"
#include "data/serializer.h"
#include "lm/pretrained_lm.h"
#include "promptem/promptem.h"

int main() {
  using namespace promptem;
  const uint64_t kSeed = 42;

  data::GemDataset ds =
      data::GenerateBenchmark(data::BenchmarkKind::kRelText, kSeed);
  std::printf("Dataset %s: textual abstracts (left) vs relational "
              "metadata (right)\n\n", ds.name.c_str());

  // Show how the two formats serialize (paper §2.2).
  const data::PairExample& sample = ds.test.front();
  std::printf("left (TEXT):  %.200s\n",
              data::SerializeRecord(ds.Left(sample)).c_str());
  std::printf("right (REL):  %.200s\n",
              data::SerializeRecord(ds.Right(sample)).c_str());
  std::printf("pair input:   %.200s...\n\n",
              data::SerializePair(ds.Left(sample), ds.Right(sample)).c_str());

  auto lm = lm::GetOrCreateSharedLM("promptem_shared_lm", kSeed);

  core::Rng rng(kSeed);
  data::LowResourceSplit split =
      data::MakeLowResourceSplit(ds, ds.default_rate, &rng);
  std::printf("training with %zu labels (%0.f%% of %d), %zu unlabeled\n",
              split.labeled.size(), ds.default_rate * 100,
              ds.TotalLabeled(), split.unlabeled.size());

  em::PromptEM promptem(
      lm.get(), baselines::MakePromptEmConfig(baselines::Method::kPromptEM,
                                              baselines::RunOptions{}));
  em::PromptEMResult result = promptem.Run(ds, split);
  std::printf("test metrics: %s\n\n", result.test.ToString().c_str());

  // Inspect a few predictions.
  em::PairEncoder encoder = em::MakePairEncoder(*lm, ds);
  core::Rng unused(0);
  std::printf("sample predictions:\n");
  for (size_t i = 0; i < 5 && i < ds.test.size(); ++i) {
    em::EncodedPair x = encoder.Encode(ds, ds.test[i]);
    const auto probs = promptem.last_model()->Probs(x, &unused);
    std::printf("  pair %zu: gold=%d predicted=%d (P(match)=%.2f)\n", i,
                ds.test[i].label, probs[1] >= 0.5f ? 1 : 0, probs[1]);
  }
  return 0;
}
